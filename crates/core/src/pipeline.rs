//! Stages 2–5: the DiEvent analysis pipeline (batch entry point).
//!
//! [`DiEventPipeline::run`] consumes a [`Recording`] and produces an
//! [`EventAnalysis`]. It is a thin driver over the streaming engine in
//! [`crate::session`]: it opens a [`PipelineSession`], pushes every
//! recorded frame through the per-camera bounded channels (one pusher
//! thread per camera when `parallel_cameras` is set — each worker is an
//! independent "smart camera" running detection, landmarks, pose,
//! tracking, recognition, and emotion classification), and finishes the
//! session with the recording's ground truth and context attached.
//! Batch and streaming therefore share one code path and produce
//! identical results.
//!
//! Identity bootstrap follows the paper's stance that the participant
//! count and seating are *external information* (§II-D-1: "n is given
//! as an external information"): the first frame's detections are
//! associated to seats by projected position, enrolling each
//! participant's appearance in the camera's gallery; every later frame
//! relies on appearance recognition alone.
//!
//! [`PipelineSession`]: crate::session::PipelineSession

use crate::acquisition::Recording;
use crate::error::DiEventError;
use crate::observe::ObserveConfig;
use crate::report::EventAnalysis;
use crate::session::{FinishOptions, StreamingConfig};
use crate::training::{train_emotion_classifier, TrainingSetConfig};
use dievent_analysis::{FusionConfig, LookAtConfig};
use dievent_emotion::EmotionClassifier;
use dievent_summarize::{HighlightConfig, ImportanceConfig, SummaryConfig};
use dievent_telemetry::Telemetry;
use dievent_video::VideoParserConfig;
use dievent_vision::ExtractorConfig;
use serde::{Deserialize, Serialize};

/// Full pipeline configuration.
///
/// Construct via [`PipelineConfig::builder`] to get validation up
/// front, or as a struct literal (validation then happens when a
/// session is opened).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Per-camera feature extraction settings.
    pub extractor: ExtractorConfig,
    /// Eye-contact geometry.
    pub lookat: LookAtConfig,
    /// Multi-camera fusion settings.
    pub fusion: FusionConfig,
    /// Temporal majority-vote window over look-at matrices (frames).
    pub matrix_smoothing: usize,
    /// EMA smoothing of the overall-emotion series.
    pub emotion_smoothing: f64,
    /// Video-parsing settings (applied to the camera-0 monitor stream).
    pub parser: VideoParserConfig,
    /// Emotion-classifier training-set settings.
    pub training: TrainingSetConfig,
    /// Seed for classifier training.
    pub training_seed: u64,
    /// Run emotion classification (disable for gaze-only benches).
    pub classify_emotions: bool,
    /// Run video composition analysis.
    pub parse_video: bool,
    /// Process cameras on parallel threads.
    pub parallel_cameras: bool,
    /// Fan frame chunks *within* each camera across the shared
    /// work-stealing pool (stage 3), and parallelize the per-frame
    /// look-at/fusion loop (stage 4). Bit-identical to the sequential
    /// path; disable only to bisect or benchmark.
    pub frame_parallel: bool,
    /// Worker threads for the work-stealing pool. `0` (the default)
    /// shares the lazily-created global pool sized from
    /// `available_parallelism` — the recommended setting, since one
    /// shared pool avoids oversubscription no matter how many sessions
    /// or cameras run at once. A non-zero value gives this session a
    /// private pool of exactly that many workers.
    pub pool_threads: usize,
    /// Highlight detection settings.
    pub highlights: HighlightConfig,
    /// Importance scoring settings.
    pub importance: ImportanceConfig,
    /// Summary selection settings.
    pub summary: SummaryConfig,
    /// Streaming-session settings (channel capacity, backpressure,
    /// reorder window).
    pub streaming: StreamingConfig,
    /// Live-observability settings (embedded metrics endpoint, rate
    /// sampler, span profiler). Fully off by default — a session then
    /// starts no extra threads.
    pub observe: ObserveConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            extractor: ExtractorConfig::standard(),
            lookat: LookAtConfig::default(),
            fusion: FusionConfig::default(),
            matrix_smoothing: 5,
            emotion_smoothing: 0.85,
            parser: VideoParserConfig::default(),
            training: TrainingSetConfig::default(),
            training_seed: 42,
            classify_emotions: true,
            parse_video: true,
            parallel_cameras: true,
            frame_parallel: true,
            pool_threads: 0,
            highlights: HighlightConfig::default(),
            importance: ImportanceConfig::default(),
            summary: SummaryConfig::default(),
            streaming: StreamingConfig::default(),
            observe: ObserveConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// Starts a validating builder seeded with the defaults.
    #[must_use = "the builder does nothing until `.build()` is called"]
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: PipelineConfig::default(),
        }
    }

    /// Checks the configuration's internal consistency.
    ///
    /// Called by [`PipelineConfigBuilder::build`] and when a session is
    /// opened, so struct-literal configurations are validated too.
    #[must_use = "ignoring the Err means running with an invalid configuration"]
    pub fn validate(&self) -> Result<(), DiEventError> {
        if self.streaming.channel_capacity == 0 {
            return Err(DiEventError::InvalidConfig(
                "streaming.channel_capacity must be >= 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.emotion_smoothing) {
            return Err(DiEventError::InvalidConfig(format!(
                "emotion_smoothing must be within [0, 1], got {}",
                self.emotion_smoothing
            )));
        }
        if self.matrix_smoothing == 0 {
            return Err(DiEventError::InvalidConfig(
                "matrix_smoothing window must be >= 1 frame".into(),
            ));
        }
        self.observe.validate()?;
        Ok(())
    }
}

/// Validating builder for [`PipelineConfig`].
///
/// ```
/// use dievent_core::PipelineConfig;
///
/// let config = PipelineConfig::builder()
///     .classify_emotions(false)
///     .channel_capacity(16)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.streaming.channel_capacity, 16);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use = "the setter consumes and returns the builder"]
            pub fn $name(mut self, value: $ty) -> Self {
                self.config.$name = value;
                self
            }
        )*
    };
}

impl PipelineConfigBuilder {
    builder_setters! {
        /// Per-camera feature extraction settings.
        extractor: ExtractorConfig,
        /// Eye-contact geometry.
        lookat: LookAtConfig,
        /// Multi-camera fusion settings.
        fusion: FusionConfig,
        /// Temporal majority-vote window over look-at matrices (frames).
        matrix_smoothing: usize,
        /// EMA smoothing of the overall-emotion series.
        emotion_smoothing: f64,
        /// Video-parsing settings.
        parser: VideoParserConfig,
        /// Emotion-classifier training-set settings.
        training: TrainingSetConfig,
        /// Seed for classifier training.
        training_seed: u64,
        /// Run emotion classification.
        classify_emotions: bool,
        /// Run video composition analysis.
        parse_video: bool,
        /// Process cameras on parallel threads.
        parallel_cameras: bool,
        /// Fan frame chunks within each camera across the shared pool.
        frame_parallel: bool,
        /// Worker threads for the pool (`0` = shared global pool).
        pool_threads: usize,
        /// Highlight detection settings.
        highlights: HighlightConfig,
        /// Importance scoring settings.
        importance: ImportanceConfig,
        /// Summary selection settings.
        summary: SummaryConfig,
        /// Streaming-session settings, wholesale.
        streaming: StreamingConfig,
        /// Live-observability settings, wholesale.
        observe: ObserveConfig,
    }

    /// Bounded per-camera input queue length, in frames (≥ 1).
    #[must_use = "the setter consumes and returns the builder"]
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.config.streaming.channel_capacity = capacity;
        self
    }

    /// Policy when a camera's bounded queue is full.
    #[must_use = "the setter consumes and returns the builder"]
    pub fn backpressure(mut self, mode: crate::session::BackpressureMode) -> Self {
        self.config.streaming.backpressure = mode;
        self
    }

    /// Maximum inter-camera skew (frames) the sequencer waits out.
    #[must_use = "the setter consumes and returns the builder"]
    pub fn reorder_window(mut self, frames: usize) -> Self {
        self.config.streaming.reorder_window = frames;
        self
    }

    /// Serves `/metrics`, `/healthz`, `/readyz`, `/snapshot`, and
    /// `/profile` on `addr` while a session is open. Port 0 binds a
    /// free port; read the resolved address back through
    /// [`PipelineSession::observer`](crate::PipelineSession::observer).
    #[must_use = "the setter consumes and returns the builder"]
    pub fn serve_metrics(mut self, addr: std::net::SocketAddr) -> Self {
        self.config.observe.http_addr = Some(addr);
        self
    }

    /// Interval between observability sampler ticks (heartbeat gauges +
    /// one rate window per tick).
    #[must_use = "the setter consumes and returns the builder"]
    pub fn sample_interval(mut self, interval: std::time::Duration) -> Self {
        self.config.observe.sample_interval = interval;
        self
    }

    /// Runs the rate sampler (attaching windowed rates to the final
    /// report) even without an HTTP endpoint.
    #[must_use = "the setter consumes and returns the builder"]
    pub fn sample_rates(mut self, enabled: bool) -> Self {
        self.config.observe.sample_rates = enabled;
        self
    }

    /// Traces per-frame lineage: every frame's queue-wait, compute,
    /// reorder-hold, and fuse latency is attributed per stage, attached
    /// to [`EventAnalysis::lineage`](crate::EventAnalysis) and served
    /// on `GET /lineage` when the HTTP endpoint runs.
    #[must_use = "the setter consumes and returns the builder"]
    pub fn trace_lineage(mut self, enabled: bool) -> Self {
        self.config.observe.trace_lineage = enabled;
        self
    }

    /// Full frame waterfalls retained by the lineage reservoir
    /// (slowest-frame exemplars are always kept on top).
    #[must_use = "the setter consumes and returns the builder"]
    pub fn lineage_reservoir(mut self, waterfalls: usize) -> Self {
        self.config.observe.lineage_reservoir = waterfalls;
        self
    }

    /// Validates and returns the configuration.
    #[must_use = "dropping the result discards both the config and any validation error"]
    pub fn build(self) -> Result<PipelineConfig, DiEventError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The assembled DiEvent pipeline.
pub struct DiEventPipeline {
    config: PipelineConfig,
    classifier: Option<EmotionClassifier>,
    telemetry: Telemetry,
}

impl DiEventPipeline {
    /// Builds the pipeline, training the emotion classifier when
    /// classification is enabled. Telemetry is on by default (it is
    /// cheap enough to leave on, and [`EventAnalysis::telemetry`] plus
    /// the stage timings come from it); opt out with
    /// [`DiEventPipeline::new_with_telemetry`] and
    /// [`Telemetry::disabled`].
    pub fn new(config: PipelineConfig) -> Self {
        Self::new_with_telemetry(config, Telemetry::enabled())
    }

    /// Builds the pipeline recording into the given telemetry domain.
    /// The domain accumulates across runs: running the same pipeline
    /// twice sums its counters and span totals.
    pub fn new_with_telemetry(config: PipelineConfig, telemetry: Telemetry) -> Self {
        let classifier = {
            let _span = telemetry.span("pipeline.train_classifier");
            config
                .classify_emotions
                .then(|| train_emotion_classifier(&config.training, config.training_seed).0)
        };
        DiEventPipeline {
            config,
            classifier,
            telemetry,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The telemetry domain this pipeline records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The trained emotion classifier, when classification is enabled.
    pub(crate) fn classifier(&self) -> Option<&EmotionClassifier> {
        self.classifier.as_ref()
    }

    /// Runs the full pipeline on a recording by driving a streaming
    /// session to completion.
    ///
    /// With `parallel_cameras` set (and more than one camera), one
    /// pusher thread per camera renders and feeds frames concurrently —
    /// acquisition pipelines with extraction exactly as the live
    /// deployment would. Otherwise frames are pushed inline,
    /// deterministically, on the calling thread.
    #[must_use = "dropping the result discards the whole analysis or its error"]
    pub fn run(&self, recording: &Recording) -> Result<EventAnalysis, DiEventError> {
        let mut session = self.session(&recording.scenario)?;
        let frames = recording.frames();
        let cameras = recording.cameras();

        if self.config.parallel_cameras && cameras > 1 {
            let feeds = session.take_feeds()?;
            let pushed: Result<Vec<()>, DiEventError> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = feeds
                    .into_iter()
                    .map(|mut feed| {
                        s.spawn(move |_| -> Result<(), DiEventError> {
                            let camera = feed.camera().index();
                            for f in 0..frames {
                                feed.push(recording.frame(camera, f))?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(camera, handle)| {
                        handle
                            .join()
                            .map_err(|_| DiEventError::CameraThreadPanicked {
                                camera: Some(camera),
                            })?
                    })
                    .collect()
            })
            .map_err(|_| DiEventError::CameraThreadPanicked { camera: None })?;
            pushed?;
        } else {
            for f in 0..frames {
                for c in 0..cameras {
                    session.push_frame(c, recording.frame(c, f))?;
                }
            }
        }

        session.finish_with(FinishOptions {
            ground_truth: recording.lookat_truth(&self.config.lookat),
            context: recording.context.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dievent_metadata::{Query, RecordKind};
    use dievent_scene::Scenario;

    /// A short two-camera recording that keeps tests fast.
    fn short_recording() -> Recording {
        Recording::capture(Scenario::two_camera_dinner(40, 11))
    }

    fn quick_config() -> PipelineConfig {
        PipelineConfig {
            classify_emotions: false,
            parse_video: true,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let recording = short_recording();
        let pipeline = DiEventPipeline::new(quick_config());
        let analysis = pipeline.run(&recording).expect("pipeline run");
        assert_eq!(analysis.matrices.len(), 40);
        assert_eq!(analysis.overall.len(), 40);
        assert_eq!(analysis.participants, 2);
        assert!(analysis.structure.is_some());
        assert!(analysis.repository.len() > 40, "event + frames stored");
    }

    #[test]
    fn detected_eye_contact_matches_script() {
        // The two-camera dinner scripts long mutual-gaze stretches; the
        // detected matrices must recover EC with decent fidelity.
        let recording = short_recording();
        let pipeline = DiEventPipeline::new(quick_config());
        let analysis = pipeline.run(&recording).expect("pipeline run");
        assert!(
            analysis.validation.f1 > 0.7,
            "look-at F1 too low: {:?}",
            analysis.validation
        );
    }

    #[test]
    fn sequential_equals_parallel() {
        let recording = short_recording();
        let par = DiEventPipeline::new(quick_config())
            .run(&recording)
            .expect("parallel run");
        let seq = DiEventPipeline::new(PipelineConfig {
            parallel_cameras: false,
            ..quick_config()
        })
        .run(&recording)
        .expect("sequential run");
        assert_eq!(
            par.matrices, seq.matrices,
            "camera parallelism must not change results"
        );
        assert_eq!(par.summary.rows(), seq.summary.rows());
    }

    #[test]
    fn repository_answers_queries() {
        let recording = short_recording();
        let analysis = DiEventPipeline::new(quick_config())
            .run(&recording)
            .expect("pipeline run");
        let events = analysis
            .repository
            .query(&Query::new().kind(RecordKind::Event));
        assert_eq!(events.len(), 1);
        let frames = analysis.repository.query(
            &Query::new()
                .kind(RecordKind::FrameAnalysis)
                .overlapping(0.5, 1.0),
        );
        assert!(!frames.is_empty());
        // Frames with at least one eye contact.
        let ec_frames = analysis.repository.query(
            &Query::new()
                .kind(RecordKind::FrameAnalysis)
                .ge("eye_contacts", 1i64),
        );
        assert!(!ec_frames.is_empty(), "scripted mutual gaze must appear");
    }

    #[test]
    fn emotion_classification_produces_estimates() {
        let recording = Recording::capture(Scenario::two_camera_dinner(16, 5));
        let pipeline = DiEventPipeline::new(PipelineConfig {
            classify_emotions: true,
            parse_video: false,
            ..PipelineConfig::default()
        });
        let analysis = pipeline.run(&recording).expect("pipeline run");
        // Some frames must carry observed emotions for ≥1 participant.
        let observed: usize = analysis.overall.iter().map(|o| o.observed).sum();
        assert!(observed > 0, "no emotions observed at all");
    }

    #[test]
    fn builder_validates_settings() {
        assert!(PipelineConfig::builder().build().is_ok());
        assert!(matches!(
            PipelineConfig::builder().channel_capacity(0).build(),
            Err(DiEventError::InvalidConfig(_))
        ));
        assert!(matches!(
            PipelineConfig::builder().emotion_smoothing(1.5).build(),
            Err(DiEventError::InvalidConfig(_))
        ));
        assert!(matches!(
            PipelineConfig::builder().matrix_smoothing(0).build(),
            Err(DiEventError::InvalidConfig(_))
        ));
        assert!(matches!(
            PipelineConfig::builder()
                .trace_lineage(true)
                .lineage_reservoir(0)
                .build(),
            Err(DiEventError::InvalidConfig(_))
        ));
        let config = PipelineConfig::builder()
            .reorder_window(4)
            .channel_capacity(2)
            .trace_lineage(true)
            .lineage_reservoir(64)
            .build()
            .expect("valid");
        assert_eq!(config.streaming.reorder_window, 4);
        assert_eq!(config.streaming.channel_capacity, 2);
        assert!(config.observe.trace_lineage);
        assert_eq!(config.observe.lineage_reservoir, 64);
    }

    #[test]
    fn zero_camera_recording_is_rejected_not_a_panic() {
        let mut scenario = Scenario::two_camera_dinner(4, 1);
        scenario.rig.cameras.clear();
        let recording = Recording::capture(scenario);
        let pipeline = DiEventPipeline::new(quick_config());
        assert!(matches!(
            pipeline.run(&recording),
            Err(DiEventError::InvalidConfig(_))
        ));
    }
}
