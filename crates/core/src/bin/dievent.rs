//! `dievent` — command-line front end for the DiEvent pipeline.
//!
//! ```text
//! dievent prototype                 # the paper's §III prototype
//! dievent dinner [FRAMES] [SEED]   # two-camera dinner (Fig. 2 rig)
//! dievent restaurant N [FRAMES] [SEED]
//!
//! options (anywhere):
//!   --json          print the analysis digest as JSON
//!   --no-emotions   skip emotion classification
//!   --no-parse      skip video composition analysis
//!   --map T         print the look-at top view at T seconds (repeatable)
//!   --metrics       print the telemetry summary (spans + registry) to stderr
//!   --trace FILE    write the span/event trace as JSON lines to FILE
//!   --serve-metrics ADDR  serve /metrics, /healthz, /readyz, /snapshot,
//!                   /lineage, and /profile on ADDR while the analysis runs
//!   --profile FILE  write the collapsed-stack span profile
//!                   (flamegraph-compatible) to FILE at exit
//!   --trace-lineage FILE  trace per-frame lineage (queue-wait vs compute
//!                   vs reorder-hold) and write the report as JSON lines
//!                   to FILE at exit
//! ```

use dievent_core::{collapsed_stacks, DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::Scenario;
use std::net::SocketAddr;
use std::process::ExitCode;

struct Options {
    help: bool,
    json: bool,
    emotions: bool,
    parse: bool,
    metrics: bool,
    trace: Option<String>,
    serve_metrics: Option<SocketAddr>,
    profile: Option<String>,
    trace_lineage: Option<String>,
    maps: Vec<f64>,
    positional: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        help: false,
        json: false,
        emotions: true,
        parse: true,
        metrics: false,
        trace: None,
        serve_metrics: None,
        profile: None,
        trace_lineage: None,
        maps: Vec::new(),
        positional: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--no-emotions" => opts.emotions = false,
            "--no-parse" => opts.parse = false,
            "--metrics" => opts.metrics = true,
            "--trace" => {
                let file = args
                    .next()
                    .ok_or_else(|| "--trace requires an output file".to_owned())?;
                opts.trace = Some(file);
            }
            "--serve-metrics" => {
                let addr = args
                    .next()
                    .ok_or_else(|| "--serve-metrics requires an address (host:port)".to_owned())?;
                opts.serve_metrics = Some(
                    addr.parse::<SocketAddr>()
                        .map_err(|e| format!("--serve-metrics {addr}: {e}"))?,
                );
            }
            "--profile" => {
                let file = args
                    .next()
                    .ok_or_else(|| "--profile requires an output file".to_owned())?;
                opts.profile = Some(file);
            }
            "--trace-lineage" => {
                let file = args
                    .next()
                    .ok_or_else(|| "--trace-lineage requires an output file".to_owned())?;
                opts.trace_lineage = Some(file);
            }
            "--map" => {
                let t = args
                    .next()
                    .ok_or_else(|| "--map requires a time in seconds".to_owned())?;
                opts.maps
                    .push(t.parse::<f64>().map_err(|e| format!("--map {t}: {e}"))?);
            }
            "--help" | "-h" => {
                opts.help = true;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}\n{USAGE}"));
            }
            other => opts.positional.push(other.to_owned()),
        }
    }
    Ok(opts)
}

const USAGE: &str =
    "usage: dievent <prototype | dinner [FRAMES] [SEED] | restaurant N [FRAMES] [SEED]> \
[--json] [--no-emotions] [--no-parse] [--map T]... [--metrics] [--trace FILE] \
[--serve-metrics ADDR] [--profile FILE] [--trace-lineage FILE]";

fn scenario_from(positional: &[String]) -> Result<Scenario, String> {
    let kind = positional
        .first()
        .map(String::as_str)
        .unwrap_or("prototype");
    let num = |i: usize, default: usize| -> Result<usize, String> {
        positional
            .get(i)
            .map(|s| s.parse::<usize>().map_err(|e| format!("{s}: {e}")))
            .unwrap_or(Ok(default))
    };
    match kind {
        "prototype" => Ok(Scenario::prototype()),
        "dinner" => Ok(Scenario::two_camera_dinner(num(1, 250)?, num(2, 7)? as u64)),
        "restaurant" => {
            let n = num(1, 6)?;
            Ok(Scenario::restaurant_dinner(
                n,
                num(2, 300)?,
                num(3, 7)? as u64,
            ))
        }
        other => Err(format!("unknown scenario {other}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let scenario = match scenario_from(&opts.positional) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let positions: Vec<(f64, f64)> = scenario
        .participants
        .iter()
        .map(|p| (p.seat_head.x, p.seat_head.y))
        .collect();
    eprintln!(
        "analyzing '{}': {} participants, {} cameras, {} frames",
        scenario.name,
        scenario.participants.len(),
        scenario.rig.len(),
        scenario.frames()
    );

    let recording = Recording::capture(scenario);
    let mut builder = PipelineConfig::builder()
        .classify_emotions(opts.emotions)
        .parse_video(opts.parse);
    if let Some(addr) = opts.serve_metrics {
        builder = builder.serve_metrics(addr);
        eprintln!("serving metrics on http://{addr} for the duration of the run");
    }
    if opts.trace_lineage.is_some() {
        builder = builder.trace_lineage(true);
    }
    let config = match builder.build() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pipeline = DiEventPipeline::new(config);
    let analysis = match pipeline.run(&recording) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.json {
        match serde_json::to_string_pretty(&analysis.digest()) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{}", analysis.brief());
        println!("\nlook-at summary matrix:\n{}", analysis.summary_table());
    }
    for &t in &opts.maps {
        println!("{}", analysis.lookat_top_view(t, &positions));
    }
    if opts.metrics {
        eprint!("{}", pipeline.telemetry().render_tree());
    }
    if let Some(path) = &opts.trace {
        if let Err(e) = std::fs::write(path, pipeline.telemetry().trace_jsonl()) {
            eprintln!("writing trace to {path} failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &opts.profile {
        if let Err(e) = std::fs::write(path, collapsed_stacks(pipeline.telemetry())) {
            eprintln!("writing profile to {path} failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("collapsed-stack profile written to {path} (flamegraph-compatible)");
    }
    if let Some(path) = &opts.trace_lineage {
        match &analysis.lineage {
            Some(report) => {
                if let Err(e) = std::fs::write(path, report.to_jsonl()) {
                    eprintln!("writing lineage trace to {path} failed: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "frame-lineage trace written to {path} ({} frames, {} exemplars)",
                    report.summary.frames_traced,
                    report.exemplars.len()
                );
            }
            None => {
                eprintln!("no lineage report was produced");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
