//! Oracle tests for the vectorized hot kernels: the row-sliced LBP
//! descriptor against the clamped per-pixel reference, and the batched
//! MLP forward pass against the scalar scratch path. Every comparison
//! is exact (`==` on `f64`) — the kernels are required to be
//! bit-identical, not merely close.

use dievent_emotion::{
    lbp_feature_vector_reference, lbp_feature_vector_with, LbpConfig, LbpScratch, Mlp,
    MlpBatchScratch, MlpConfig, MlpScratch,
};
use dievent_video::GrayFrame;
use proptest::prelude::*;

/// Deterministic pseudo-random fill so every pixel pattern is exercised
/// without a strategy allocating whole pixel vectors.
fn noisy_frame(w: u32, h: u32, salt: u32) -> GrayFrame {
    let mut f = GrayFrame::new(w, h, 0);
    f.mutate(|d| {
        for (i, px) in d.iter_mut().enumerate() {
            *px = ((i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(salt.wrapping_mul(0x85eb_ca6b))
                >> 24) as u8;
        }
    });
    f
}

fn vectorized(f: &GrayFrame, cfg: &LbpConfig) -> Vec<f64> {
    let mut feature = Vec::new();
    let mut scratch = LbpScratch::new();
    // Twice through the same scratch: reuse must not change any bit.
    lbp_feature_vector_with(f, cfg, &mut feature, &mut scratch);
    let first = feature.clone();
    lbp_feature_vector_with(f, cfg, &mut feature, &mut scratch);
    assert_eq!(first, feature, "scratch reuse changed the descriptor");
    feature
}

/// The degenerate and non-divisible shapes the row-sliced kernel
/// special-cases: no interior at all, one interior row/column, and
/// grids that don't divide the patch evenly.
#[test]
fn edge_shapes_match_reference() {
    for &(w, h) in &[
        (1u32, 1u32),
        (1, 7),
        (7, 1),
        (2, 2),
        (2, 5),
        (3, 3),
        (4, 3),
        (33, 17),
        (48, 48),
    ] {
        for grid in [1usize, 3, 4, 5] {
            for threshold in [0u8, 8, 255] {
                let f = noisy_frame(w, h, w * 31 + h);
                let cfg = LbpConfig { grid, threshold };
                assert_eq!(
                    vectorized(&f, &cfg),
                    lbp_feature_vector_reference(&f, &cfg),
                    "{w}x{h} grid={grid} t={threshold}"
                );
            }
        }
    }
}

proptest! {
    /// Random frame shapes and contents: the vectorized descriptor is
    /// bin-for-bin identical to the clamped per-pixel reference.
    #[test]
    fn lbp_kernel_matches_reference(
        w in 1u32..40,
        h in 1u32..40,
        salt in 0u32..1000,
        grid in 1usize..6,
        threshold in prop_oneof![Just(0u8), 1u8..32, Just(255u8)],
    ) {
        let f = noisy_frame(w, h, salt);
        let cfg = LbpConfig { grid, threshold };
        prop_assert_eq!(vectorized(&f, &cfg), lbp_feature_vector_reference(&f, &cfg));
    }

    /// The batched forward pass is bit-identical to running the scalar
    /// scratch path once per sample — including linear (no hidden
    /// layer) networks and batches of one.
    #[test]
    fn batched_mlp_matches_scalar(
        seed in 0u64..500,
        samples in 1usize..9,
        deep in proptest::bool::ANY,
        xs in proptest::collection::vec(-8.0..8.0f64, 6 * 8),
    ) {
        let hidden = if deep { vec![7, 5] } else { vec![] };
        let mlp = Mlp::new(MlpConfig { input: 6, hidden, output: 4, seed });
        let flat = &xs[..samples * 6];
        let mut batch = MlpBatchScratch::new();
        let probs = mlp.predict_proba_batch_with(samples, flat, &mut batch).to_vec();
        let mut scalar = MlpScratch::new();
        for s in 0..samples {
            let expect = mlp.predict_proba_with(&flat[s * 6..(s + 1) * 6], &mut scalar);
            prop_assert_eq!(&probs[s * 4..(s + 1) * 4], expect, "sample {}", s);
        }
    }
}
