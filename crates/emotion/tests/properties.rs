//! Property-based tests for the emotion substrate.

use dievent_emotion::lbp::UNIFORM_BINS;
use dievent_emotion::{lbp_feature_vector, Dataset, LbpConfig, Mlp, MlpConfig, Normalizer};
use dievent_video::GrayFrame;
use proptest::prelude::*;

fn patch() -> impl Strategy<Value = GrayFrame> {
    (
        8u32..32,
        8u32..32,
        0u8..=255,
        proptest::collection::vec((0i64..32, 0i64..32, 1u32..10, 1u32..10, 0u8..=255), 0..4),
    )
        .prop_map(|(w, h, bg, rects)| {
            let mut f = GrayFrame::new(w, h, bg);
            for (x, y, rw, rh, v) in rects {
                f.fill_rect(x, y, rw, rh, v);
            }
            f
        })
}

proptest! {
    /// LBP descriptors are valid per-cell distributions.
    #[test]
    fn lbp_descriptor_is_per_cell_normalized(f in patch(), grid in 1usize..5) {
        let cfg = LbpConfig { grid, threshold: 8 };
        let v = lbp_feature_vector(&f, &cfg);
        prop_assert_eq!(v.len(), cfg.feature_len());
        for cell in v.chunks(UNIFORM_BINS) {
            let s: f64 = cell.iter().sum();
            // Degenerate sub-pixel cells may be all-zero.
            prop_assert!(s.abs() < 1e-9 || (s - 1.0).abs() < 1e-9, "cell sum {}", s);
            prop_assert!(cell.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// Illumination invariance: adding a constant (without clipping)
    /// never changes the descriptor.
    #[test]
    fn lbp_is_offset_invariant(f in patch(), offset in 1u8..40) {
        // Avoid clipping by compressing the source range first.
        let mut base = f.clone();
        base.mutate(|d| {
            for px in d.iter_mut() {
                *px = *px / 2 + 40;
            }
        });
        let mut shifted = base.clone();
        shifted.mutate(|d| {
            for px in d.iter_mut() {
                *px += offset; // ≤ 167 + 40 < 255: no clipping
            }
        });
        let cfg = LbpConfig::default();
        prop_assert_eq!(lbp_feature_vector(&base, &cfg), lbp_feature_vector(&shifted, &cfg));
    }

    /// MLP softmax outputs are always valid distributions, whatever the
    /// weights and inputs.
    #[test]
    fn mlp_outputs_distributions(
        seed in 0u64..1000,
        x in proptest::collection::vec(-10.0..10.0f64, 6),
    ) {
        let mlp = Mlp::new(MlpConfig { input: 6, hidden: vec![5], output: 4, seed });
        let p = mlp.predict_proba(&x);
        prop_assert_eq!(p.len(), 4);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v.is_finite() && v >= 0.0));
        prop_assert!(mlp.predict(&x) < 4);
    }

    /// Standardization then re-standardization is idempotent on the
    /// training set itself.
    #[test]
    fn normalizer_is_idempotent_on_fit_data(
        rows in proptest::collection::vec(proptest::collection::vec(-50.0..50.0f64, 3), 2..20),
    ) {
        let mut d = Dataset::new();
        for (i, r) in rows.iter().enumerate() {
            d.push(r.clone(), i % 2);
        }
        let n1 = Normalizer::fit(&d);
        let once = n1.apply_dataset(&d);
        let n2 = Normalizer::fit(&once);
        let twice = n2.apply_dataset(&once);
        for (a, b) in once.features.iter().zip(&twice.features) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-6, "{} vs {}", x, y);
            }
        }
    }
}
