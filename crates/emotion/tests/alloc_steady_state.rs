//! Asserts the tentpole zero-allocation claim: once an [`ExtractArena`]
//! has warmed up on a frame shape, `classify_batch_with` performs zero
//! heap allocation — the LBP bin image, packed features, and MLP
//! activation planes are all reused.
//!
//! A counting `#[global_allocator]` wraps the system allocator; only
//! allocations made by *this* thread are counted (the test harness may
//! allocate concurrently), via a thread-local counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dievent_emotion::{Emotion, EmotionClassifier, ExtractArena, LbpConfig, TrainingConfig};
use dievent_video::GrayFrame;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers entirely to the system allocator; the only addition is
// a thread-local counter bump, which itself never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocations during TLS teardown don't abort.
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Minimal deterministic training set (the classifier constructor is
/// the only way to build one; training itself may allocate freely).
fn tiny_classifier() -> EmotionClassifier {
    let mut patches = Vec::new();
    for v in 0..3u32 {
        for (i, &e) in Emotion::ALL.iter().enumerate() {
            let mut f = GrayFrame::new(24, 24, 100);
            f.fill_rect(2 + i as i64 * 3, 4 + v as i64 * 2, 6, 5, 30 + i as u8 * 20);
            f.fill_disk(12.0, 16.0, 2.0 + i as f64, 220);
            patches.push((f, e));
        }
    }
    let tc = TrainingConfig {
        epochs: 2,
        ..TrainingConfig::default()
    };
    let (clf, _) = EmotionClassifier::train(&patches, LbpConfig::default(), &[8], 3, &tc);
    clf
}

#[test]
fn classify_batch_steady_state_allocates_nothing() {
    let clf = tiny_classifier();
    let frames: Vec<GrayFrame> = (0..4)
        .map(|i| {
            let mut f = GrayFrame::new(48, 48, 90);
            f.fill_disk(24.0, 20.0 + i as f64, 8.0, 40);
            f
        })
        .collect();
    let patches: Vec<&GrayFrame> = frames.iter().collect();

    let mut arena = ExtractArena::new();
    // Warm-up: buffers grow to this frame shape (and allocate).
    for _ in 0..2 {
        let preds = clf.classify_batch_with(&patches, &mut arena);
        assert_eq!(preds.len(), patches.len());
    }

    let before = allocs_on_this_thread();
    let mut checksum = 0.0;
    for _ in 0..10 {
        let preds = clf.classify_batch_with(&patches, &mut arena);
        // Touch the results so the whole path stays live.
        for i in 0..preds.len() {
            checksum += preds.top(i).1;
        }
    }
    let after = allocs_on_this_thread();
    assert!(checksum > 0.0);
    assert_eq!(
        after - before,
        0,
        "steady-state classify_batch_with must not allocate \
         ({} allocations over 10 frames)",
        after - before
    );
}
