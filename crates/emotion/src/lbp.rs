//! Local Binary Patterns — the paper's face feature extractor.
//!
//! The LBP code of a pixel compares it with its 8 neighbours: each
//! neighbour at least as bright as the centre contributes a 1-bit. The
//! classical *uniform* patterns (at most two 0↔1 transitions around the
//! ring) carry most texture information; the 58 uniform codes get their
//! own histogram bins and all non-uniform codes share one, giving a
//! 59-bin histogram. Faces are described by concatenating the histograms
//! of a grid of cells over the face patch, which preserves the spatial
//! layout of mouth/eye texture that distinguishes expressions.

use dievent_video::GrayFrame;

/// Number of histogram bins for uniform LBP (58 uniform + 1 catch-all).
pub const UNIFORM_BINS: usize = 59;

/// Configuration of the LBP descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbpConfig {
    /// Cells per row/column of the spatial grid (e.g. 4 → 4×4 = 16 cells).
    pub grid: usize,
    /// Comparison threshold: a neighbour sets its bit only when it is at
    /// least `center + threshold`. A small positive threshold (above the
    /// sensor-noise amplitude) makes codes on flat regions collapse to a
    /// stable 0 instead of noise — the classic LTP/census robustness fix.
    pub threshold: u8,
}

impl Default for LbpConfig {
    fn default() -> Self {
        LbpConfig {
            grid: 4,
            threshold: 8,
        }
    }
}

impl LbpConfig {
    /// Total descriptor length: `grid² × 59`.
    pub fn feature_len(&self) -> usize {
        self.grid * self.grid * UNIFORM_BINS
    }
}

/// Number of 0↔1 transitions in the circular 8-bit pattern.
const fn transitions(code: u8) -> u32 {
    let rotated = code.rotate_left(1);
    (code ^ rotated).count_ones()
}

/// Builds the uniform-pattern lookup table: uniform codes map to bins
/// `0..58` in ascending code order, everything else to bin 58.
///
/// `const`-evaluated once at compile time; the old implementation
/// rebuilt this 256-entry table on every descriptor call, which
/// dominated small-patch histogram cost.
const fn build_uniform_table() -> [u8; 256] {
    let mut table = [58u8; 256];
    let mut bin = 0u8;
    let mut code = 0usize;
    while code < 256 {
        if transitions(code as u8) <= 2 {
            table[code] = bin;
            bin += 1;
        }
        code += 1;
    }
    table
}

static UNIFORM_TABLE: [u8; 256] = build_uniform_table();

/// The uniform-pattern lookup table (compile-time constant).
fn uniform_table() -> &'static [u8; 256] {
    &UNIFORM_TABLE
}

/// Reusable buffers for the vectorized LBP kernel: the per-patch
/// uniform-bin image and one row of centre+threshold values.
///
/// One scratch per worker, reused across every patch it processes —
/// buffers grow to the largest patch seen and are never shrunk, so the
/// steady-state descriptor path performs zero heap allocation (asserted
/// by `tests/alloc_steady_state.rs`).
#[derive(Debug, Default, Clone)]
pub struct LbpScratch {
    /// Per-pixel uniform-LBP bin (`0..59`) of the current patch,
    /// row-major `w × h`.
    bins: Vec<u8>,
    /// One row of `centre + threshold` comparison values (`i16` lanes:
    /// `255 + 255 = 510` must not wrap, and the compare kernel needs a
    /// signed subtraction).
    centers: Vec<i16>,
}

impl LbpScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        LbpScratch::default()
    }
}

/// Raw LBP code of the pixel at `(x, y)` (clamp-to-edge at borders),
/// with comparison threshold `t` (see [`LbpConfig::threshold`]).
///
/// Bit `i` corresponds to the `i`-th neighbour clockwise from the top-left.
pub fn lbp_code(frame: &GrayFrame, x: i64, y: i64, t: u8) -> u8 {
    const OFFSETS: [(i64, i64); 8] = [
        (-1, -1),
        (0, -1),
        (1, -1),
        (1, 0),
        (1, 1),
        (0, 1),
        (-1, 1),
        (-1, 0),
    ];
    let center = frame.get_clamped(x, y) as u16 + t as u16;
    let mut code = 0u8;
    for (i, (dx, dy)) in OFFSETS.iter().enumerate() {
        if frame.get_clamped(x + dx, y + dy) as u16 >= center {
            code |= 1 << i;
        }
    }
    code
}

/// Maps every pixel of `frame` to its uniform-LBP bin (`0..59`) using
/// comparison threshold `t`.
pub fn uniform_lbp_image(frame: &GrayFrame, t: u8) -> Vec<u8> {
    let mut scratch = LbpScratch::new();
    fill_bin_image(frame, t, &mut scratch);
    scratch.bins
}

/// One branchless comparison pass: for every interior column, compare
/// the neighbour row (pre-shifted so index `i` is the neighbour of
/// centre `i`) against the centre row and OR the result into bit
/// `bit` of the code. The comparison is pure `i16` arithmetic — the
/// sign bit of `n - center` is the (negated) comparison result, so the
/// loop body is lane-wise subtract/shift/mask/or over three
/// equal-length slices, exactly the shape the autovectorizer turns
/// into `i16`-lane SIMD. Exact because both operands fit `i16`:
/// `n ≤ 255` and `center = centre_px + threshold ≤ 510`, so
/// `n ≥ center` ⟺ `n - center ≥ 0` ⟺ the sign bit is clear.
#[inline]
fn compare_pass(codes: &mut [u8], neighbours: &[u8], centers: &[i16], bit: u8) {
    for ((code, &n), &center) in codes.iter_mut().zip(neighbours).zip(centers) {
        let diff = (n as i16).wrapping_sub(center);
        *code |= (!(diff >> 15) as u8 & 1) << bit;
    }
}

/// Fills `scratch.bins` with the uniform-LBP bin of every pixel.
///
/// Interior pixels (`1 ≤ x ≤ w-2`, `1 ≤ y ≤ h-2`) are produced by
/// eight whole-row [`compare_pass`]es — one per neighbour, each a
/// branchless slice operation over pre-shifted neighbour rows — then a
/// single in-place remap through the const uniform table. The 1-pixel
/// border (and any patch thinner than 3 px) falls back to the clamped
/// [`lbp_code`], so both paths produce identical codes by construction
/// (same neighbour order, same `u16` threshold comparison).
fn fill_bin_image(frame: &GrayFrame, t: u8, scratch: &mut LbpScratch) {
    let table = uniform_table();
    let w = frame.width() as usize;
    let h = frame.height() as usize;
    let data = frame.data();
    let tc = t as i16;
    scratch.bins.clear();
    scratch.bins.resize(w * h, 0);
    if w < 3 || h < 3 {
        // Degenerate shapes (1×1, 1×N, N×1, 2-px strips) have no
        // interior: every pixel needs clamping.
        for y in 0..h {
            for x in 0..w {
                scratch.bins[y * w + x] = table[lbp_code(frame, x as i64, y as i64, t) as usize];
            }
        }
        return;
    }
    scratch.centers.clear();
    scratch.centers.resize(w, 0);
    for x in 0..w {
        scratch.bins[x] = table[lbp_code(frame, x as i64, 0, t) as usize];
        scratch.bins[(h - 1) * w + x] =
            table[lbp_code(frame, x as i64, (h - 1) as i64, t) as usize];
    }
    for y in 1..h - 1 {
        let up = &data[(y - 1) * w..y * w];
        let mid = &data[y * w..(y + 1) * w];
        let down = &data[(y + 1) * w..(y + 2) * w];
        for (center, &m) in scratch.centers.iter_mut().zip(mid) {
            *center = m as i16 + tc;
        }
        let row = &mut scratch.bins[y * w..(y + 1) * w];
        row[0] = table[lbp_code(frame, 0, y as i64, t) as usize];
        row[w - 1] = table[lbp_code(frame, (w - 1) as i64, y as i64, t) as usize];
        let codes = &mut row[1..w - 1];
        let centers = &scratch.centers[1..w - 1];
        // Neighbour order matches `lbp_code`'s OFFSETS: clockwise from
        // the top-left. Each pass reads the neighbour row shifted by
        // the neighbour's dx, so lane `i` always compares against
        // centre `i`.
        compare_pass(codes, &up[..w - 2], centers, 0);
        compare_pass(codes, &up[1..w - 1], centers, 1);
        compare_pass(codes, &up[2..], centers, 2);
        compare_pass(codes, &mid[2..], centers, 3);
        compare_pass(codes, &down[2..], centers, 4);
        compare_pass(codes, &down[1..w - 1], centers, 5);
        compare_pass(codes, &down[..w - 2], centers, 6);
        compare_pass(codes, &mid[..w - 2], centers, 7);
        for code in codes.iter_mut() {
            *code = table[*code as usize];
        }
    }
}

/// Normalized 59-bin uniform-LBP histogram of a whole patch.
pub fn lbp_histogram(frame: &GrayFrame) -> Vec<f64> {
    let mut scratch = LbpScratch::new();
    fill_bin_image(frame, LbpConfig::default().threshold, &mut scratch);
    let mut counts = [0u32; UNIFORM_BINS];
    for &bin in &scratch.bins {
        counts[bin as usize] += 1;
    }
    let n = scratch.bins.len().max(1) as f64;
    counts.iter().map(|&c| c as f64 / n).collect()
}

/// The full spatial-grid LBP descriptor: per-cell normalized histograms
/// concatenated row-major. Length is [`LbpConfig::feature_len`].
///
/// Cells partition the patch as evenly as possible; a patch smaller than
/// the grid still works (degenerate cells produce near-empty histograms).
pub fn lbp_feature_vector(frame: &GrayFrame, config: &LbpConfig) -> Vec<f64> {
    let mut feature = Vec::new();
    lbp_feature_vector_into(frame, config, &mut feature);
    feature
}

/// Allocation-free variant of [`lbp_feature_vector`]: clears and fills
/// `feature` in place, so per-frame callers can reuse one buffer.
///
/// Allocates a transient [`LbpScratch`] per call; hot-path callers
/// should hold a scratch and use [`lbp_feature_vector_with`] instead.
pub fn lbp_feature_vector_into(frame: &GrayFrame, config: &LbpConfig, feature: &mut Vec<f64>) {
    let mut scratch = LbpScratch::new();
    lbp_feature_vector_with(frame, config, feature, &mut scratch);
}

/// Fully allocation-free descriptor: the bin image is computed once
/// into `scratch` by the vectorized [`fill_bin_image`] kernel, then
/// each grid cell accumulates integer bin counts over its rectangle
/// and normalizes.
///
/// Bit-identical to the per-pixel reference
/// ([`lbp_feature_vector_reference`]): integer counts converted once
/// via `count as f64 / n` equal the reference's repeated `+= 1.0`
/// accumulation exactly, because every count is far below 2⁵³.
pub fn lbp_feature_vector_with(
    frame: &GrayFrame,
    config: &LbpConfig,
    feature: &mut Vec<f64>,
    scratch: &mut LbpScratch,
) {
    let g = config.grid.max(1);
    let w = frame.width() as usize;
    let h = frame.height() as usize;
    feature.clear();
    feature.resize(g * g * UNIFORM_BINS, 0.0);
    fill_bin_image(frame, config.threshold, scratch);

    // Cell boundaries (inclusive-exclusive) along each axis.
    let bound = |n: usize, i: usize| i * n / g;

    for cy in 0..g {
        let y0 = bound(h, cy);
        let y1 = bound(h, cy + 1);
        for cx in 0..g {
            let x0 = bound(w, cx);
            let x1 = bound(w, cx + 1);
            let mut counts = [0u32; UNIFORM_BINS];
            for y in y0..y1 {
                for &bin in &scratch.bins[y * w + x0..y * w + x1] {
                    counts[bin as usize] += 1;
                }
            }
            let base = (cy * g + cx) * UNIFORM_BINS;
            let cell = &mut feature[base..base + UNIFORM_BINS];
            let count = (x1 - x0) * (y1 - y0);
            if count > 0 {
                let n = count as f64;
                for (v, &c) in cell.iter_mut().zip(counts.iter()) {
                    *v = c as f64 / n;
                }
            }
        }
    }
}

/// Reference descriptor built exclusively from the clamped per-pixel
/// [`lbp_code`] with f64 accumulation — the bit-identical oracle the
/// vectorized kernel is tested against (see
/// `tests/property_kernels.rs`). Never used on the hot path.
pub fn lbp_feature_vector_reference(frame: &GrayFrame, config: &LbpConfig) -> Vec<f64> {
    let table = uniform_table();
    let g = config.grid.max(1);
    let w = frame.width() as usize;
    let h = frame.height() as usize;
    let mut feature = vec![0.0f64; g * g * UNIFORM_BINS];
    let bound = |n: usize, i: usize| i * n / g;
    for cy in 0..g {
        let y0 = bound(h, cy);
        let y1 = bound(h, cy + 1);
        for cx in 0..g {
            let x0 = bound(w, cx);
            let x1 = bound(w, cx + 1);
            let base = (cy * g + cx) * UNIFORM_BINS;
            for y in y0..y1 {
                for x in x0..x1 {
                    let code = lbp_code(frame, x as i64, y as i64, config.threshold);
                    feature[base + table[code as usize] as usize] += 1.0;
                }
            }
            let count = (x1 - x0) * (y1 - y0);
            if count > 0 {
                let n = count as f64;
                for v in &mut feature[base..base + UNIFORM_BINS] {
                    *v /= n;
                }
            }
        }
    }
    feature
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_counts_ring_changes() {
        assert_eq!(transitions(0b0000_0000), 0);
        assert_eq!(transitions(0b1111_1111), 0);
        assert_eq!(transitions(0b0000_1111), 2);
        assert_eq!(transitions(0b0101_0101), 8);
    }

    /// The pre-const-table implementation, kept as the reference the
    /// compile-time table must match.
    fn dynamic_uniform_table() -> [u8; 256] {
        let mut table = [58u8; 256];
        let mut bin = 0u8;
        for code in 0..=255u8 {
            if transitions(code) <= 2 {
                table[code as usize] = bin;
                bin += 1;
            }
        }
        assert_eq!(bin, 58);
        table
    }

    #[test]
    fn const_table_matches_dynamic_builder() {
        assert_eq!(uniform_table(), &dynamic_uniform_table());
    }

    #[test]
    fn interior_fast_path_matches_clamped_path() {
        // Pseudo-random frame: every pixel of the fast-path descriptor
        // must match a reference built exclusively from the clamped
        // per-pixel `lbp_code`.
        let mut f = GrayFrame::new(37, 29, 0);
        f.mutate(|d| {
            for (i, px) in d.iter_mut().enumerate() {
                *px = ((i as u32).wrapping_mul(2654435761) >> 24) as u8;
            }
        });
        let cfg = LbpConfig {
            grid: 4,
            threshold: 8,
        };
        let fast = lbp_feature_vector(&f, &cfg);
        // Reference path: clamped codes only.
        let table = uniform_table();
        let g = cfg.grid;
        let (w, h) = (f.width() as usize, f.height() as usize);
        let mut reference = vec![0.0f64; cfg.feature_len()];
        let bound = |n: usize, i: usize| i * n / g;
        for cy in 0..g {
            for cx in 0..g {
                let (y0, y1) = (bound(h, cy), bound(h, cy + 1));
                let (x0, x1) = (bound(w, cx), bound(w, cx + 1));
                let base = (cy * g + cx) * UNIFORM_BINS;
                for y in y0..y1 {
                    for x in x0..x1 {
                        let code = lbp_code(&f, x as i64, y as i64, cfg.threshold);
                        reference[base + table[code as usize] as usize] += 1.0;
                    }
                }
                let n = ((x1 - x0) * (y1 - y0)).max(1) as f64;
                for v in &mut reference[base..base + UNIFORM_BINS] {
                    *v /= n;
                }
            }
        }
        assert_eq!(fast, reference, "fast path must be bit-identical");
    }

    #[test]
    fn feature_vector_into_reuses_buffer() {
        let mut f = GrayFrame::new(24, 24, 0);
        f.fill_disk(12.0, 12.0, 7.0, 200);
        let cfg = LbpConfig::default();
        let fresh = lbp_feature_vector(&f, &cfg);
        let mut buf = vec![123.0; 7]; // wrong size, stale contents
        lbp_feature_vector_into(&f, &cfg, &mut buf);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn uniform_table_has_58_uniform_codes() {
        let t = uniform_table();
        let distinct: std::collections::HashSet<u8> = t.iter().copied().collect();
        assert_eq!(distinct.len(), 59);
        // 0 and 255 are uniform (0 transitions).
        assert_ne!(t[0], 58);
        assert_ne!(t[255], 58);
        // 0b01010101 is maximally non-uniform.
        assert_eq!(t[0b0101_0101], 58);
    }

    #[test]
    fn flat_patch_codes_are_stable() {
        // With threshold 0, every neighbour equals the centre, so every
        // comparison is >= and the code is 0xFF; with a positive
        // threshold nothing clears the bar and the code is 0. Either
        // way: uniform codes, stable across the patch.
        let f = GrayFrame::new(8, 8, 100);
        assert_eq!(lbp_code(&f, 4, 4, 0), 0xFF);
        assert_eq!(lbp_code(&f, 4, 4, 8), 0x00);
        let img = uniform_lbp_image(&f, 8);
        assert!(img.iter().all(|&b| b == img[0]));
    }

    #[test]
    fn threshold_suppresses_sensor_noise() {
        // Two noisy renderings of the same flat patch: with threshold 0
        // the descriptors diverge, with threshold 8 they collapse to the
        // same stable code image.
        let noisy = |salt: u32| {
            let mut f = GrayFrame::new(16, 16, 120);
            f.mutate(|d| {
                for (i, px) in d.iter_mut().enumerate() {
                    let h = (i as u32)
                        .wrapping_mul(2654435761)
                        .wrapping_add(salt.wrapping_mul(0x85eb_ca6b))
                        .wrapping_mul(0xc2b2_ae35);
                    *px = (*px as i32 + (h >> 29) as i32 - 3).clamp(0, 255) as u8;
                }
            });
            f
        };
        let a = noisy(1);
        let b = noisy(2);
        let with_t: Vec<u8> = uniform_lbp_image(&a, 8);
        let with_t_b: Vec<u8> = uniform_lbp_image(&b, 8);
        assert_eq!(with_t, with_t_b, "thresholded codes are noise-stable");
        let raw_a = uniform_lbp_image(&a, 0);
        let raw_b = uniform_lbp_image(&b, 0);
        assert_ne!(raw_a, raw_b, "unthresholded codes chase the noise");
    }

    #[test]
    fn histogram_normalized() {
        let mut f = GrayFrame::new(16, 16, 0);
        f.fill_rect(4, 4, 8, 8, 200);
        f.fill_disk(8.0, 8.0, 3.0, 50);
        let h = lbp_histogram(&f);
        assert_eq!(h.len(), UNIFORM_BINS);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(h.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn feature_vector_length_matches_config() {
        let f = GrayFrame::new(32, 32, 10);
        for grid in [1usize, 2, 4, 5] {
            let cfg = LbpConfig { grid, threshold: 8 };
            let v = lbp_feature_vector(&f, &cfg);
            assert_eq!(v.len(), cfg.feature_len());
        }
    }

    #[test]
    fn per_cell_histograms_normalized() {
        let mut f = GrayFrame::new(24, 24, 30);
        f.fill_disk(12.0, 12.0, 8.0, 220);
        let cfg = LbpConfig {
            grid: 3,
            threshold: 8,
        };
        let v = lbp_feature_vector(&f, &cfg);
        for cell in 0..9 {
            let s: f64 = v[cell * UNIFORM_BINS..(cell + 1) * UNIFORM_BINS]
                .iter()
                .sum();
            assert!((s - 1.0).abs() < 1e-9, "cell {cell} sums to {s}");
        }
    }

    #[test]
    fn descriptor_is_translation_sensitive_across_cells() {
        // The same blob in different cells must change the descriptor —
        // that's the point of the spatial grid.
        let mut top = GrayFrame::new(32, 32, 20);
        top.fill_disk(8.0, 8.0, 5.0, 220);
        let mut bottom = GrayFrame::new(32, 32, 20);
        bottom.fill_disk(24.0, 24.0, 5.0, 220);
        let cfg = LbpConfig {
            grid: 4,
            threshold: 8,
        };
        let a = lbp_feature_vector(&top, &cfg);
        let b = lbp_feature_vector(&bottom, &cfg);
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(
            dist > 0.5,
            "descriptor must separate spatial layouts, dist = {dist}"
        );
    }

    #[test]
    fn descriptor_is_illumination_invariant() {
        // LBP thresholds against the local centre, so adding a constant
        // offset to all pixels leaves the descriptor unchanged.
        let mut a = GrayFrame::new(32, 32, 40);
        a.fill_disk(16.0, 10.0, 6.0, 90);
        a.fill_rect(8, 20, 16, 4, 70);
        let mut b = a.clone();
        b.mutate(|d| {
            for px in d.iter_mut() {
                *px = px.saturating_add(60);
            }
        });
        let cfg = LbpConfig::default();
        let fa = lbp_feature_vector(&a, &cfg);
        let fb = lbp_feature_vector(&b, &cfg);
        let dist: f64 = fa.iter().zip(&fb).map(|(x, y)| (x - y).abs()).sum();
        assert!(
            dist < 1e-9,
            "LBP must ignore global illumination, dist = {dist}"
        );
    }

    #[test]
    fn degenerate_tiny_patch() {
        let f = GrayFrame::new(2, 2, 128);
        let cfg = LbpConfig {
            grid: 4,
            threshold: 8,
        };
        let v = lbp_feature_vector(&f, &cfg);
        assert_eq!(v.len(), cfg.feature_len());
        // Cells smaller than a pixel stay all-zero; others are normalized.
        assert!(v.iter().all(|&x| x.is_finite()));
    }
}
