//! A from-scratch multilayer perceptron — the paper's "neural network as
//! a classifier".
//!
//! Architecture: fully-connected layers with ReLU activations and a
//! softmax output trained with cross-entropy loss via mini-batch SGD
//! with momentum. Weights use Xavier/He initialization from a seeded
//! RNG so training is fully deterministic and reproducible.

// Dense linear-algebra loops read clearest with explicit indices.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape and initialization parameters of an MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input dimension.
    pub input: usize,
    /// Hidden layer widths (may be empty for a linear softmax model).
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub output: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

/// Optimization hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 16,
            epochs: 40,
            weight_decay: 1e-4,
        }
    }
}

/// One fully-connected layer: `y = W·x + b` (row-major weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    rows: usize,
    cols: usize,
    w: Vec<f64>,
    b: Vec<f64>,
    // Momentum buffers.
    vw: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        // He initialization, appropriate for ReLU.
        let scale = (2.0 / cols as f64).sqrt();
        let w = (0..rows * cols)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            rows,
            cols,
            w,
            b: vec![0.0; rows],
            vw: vec![0.0; rows * cols],
            vb: vec![0.0; rows],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(x.len(), self.cols);
        out.clear();
        out.reserve(self.rows);
        for r in 0..self.rows {
            let row = &self.w[r * self.cols..(r + 1) * self.cols];
            let mut acc = self.b[r];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }
}

/// Per-layer gradient accumulators for one mini-batch.
struct Grads {
    gw: Vec<Vec<f64>>,
    gb: Vec<Vec<f64>>,
}

/// Reusable forward/backward buffers.
///
/// The original hot loop allocated one `Vec<f64>` per layer per frame
/// (plus the input copy and the softmax output); at 610 frames × 4
/// cameras × per-face classification that dominated `predict_proba`
/// cost. A scratch is cheap to create empty — buffers grow to the
/// network's widths on first use and are reused afterwards.
///
/// All scratch-threaded entry points produce bit-identical results to
/// their allocating counterparts: the arithmetic and its order are
/// unchanged, only the buffer reuse differs.
#[derive(Debug, Default, Clone)]
pub struct MlpScratch {
    /// `activations[0]` = input copy; `activations[i]` = output of
    /// layer `i-1` after ReLU (raw logits for the last layer).
    activations: Vec<Vec<f64>>,
    /// Softmax output of the last forward pass.
    probs: Vec<f64>,
    /// Backprop: current layer's delta.
    delta: Vec<f64>,
    /// Backprop: next (earlier) layer's delta under construction.
    prev: Vec<f64>,
}

impl MlpScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        MlpScratch::default()
    }
}

/// Reusable buffers for the batched forward pass
/// ([`Mlp::predict_proba_batch_with`]).
///
/// Holds two flat ping-pong activation planes (`samples × width`,
/// sample-major) plus the flat probability output. Buffers grow to the
/// largest batch seen and are reused afterwards, so steady-state
/// batched inference performs zero heap allocation.
#[derive(Debug, Default, Clone)]
pub struct MlpBatchScratch {
    /// Current layer's input plane, sample-major `samples × cols`.
    a: Vec<f64>,
    /// Current layer's output plane, sample-major `samples × rows`.
    b: Vec<f64>,
    /// Softmax output, sample-major `samples × output`.
    probs: Vec<f64>,
}

impl MlpBatchScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        MlpBatchScratch::default()
    }
}

/// A feed-forward network with ReLU hidden layers and softmax output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds a network with randomly initialized weights.
    ///
    /// # Panics
    /// Panics when any dimension is zero.
    pub fn new(config: MlpConfig) -> Self {
        assert!(
            config.input > 0 && config.output > 0,
            "dimensions must be positive"
        );
        assert!(
            config.hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut dims = vec![config.input];
        dims.extend(&config.hidden);
        dims.push(config.output);
        let layers = dims
            .windows(2)
            .map(|d| Layer::new(d[1], d[0], &mut rng))
            .collect();
        Mlp { config, layers }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Forward pass returning softmax class probabilities.
    ///
    /// Allocating convenience wrapper around
    /// [`predict_proba_with`](Self::predict_proba_with); per-frame
    /// callers should hold an [`MlpScratch`] instead.
    ///
    /// # Panics
    /// Panics when `x.len() != config.input`.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut scratch = MlpScratch::new();
        self.predict_proba_with(x, &mut scratch).to_vec()
    }

    /// Forward pass into reusable buffers; returns the class
    /// probabilities (borrowed from `scratch`, valid until the next
    /// pass). Bit-identical to [`predict_proba`](Self::predict_proba).
    ///
    /// # Panics
    /// Panics when `x.len() != config.input`.
    pub fn predict_proba_with<'s>(&self, x: &[f64], scratch: &'s mut MlpScratch) -> &'s [f64] {
        assert_eq!(x.len(), self.config.input, "input dimension mismatch");
        self.forward_full(x, scratch);
        &scratch.probs
    }

    /// Forward passes over a whole batch with one shared scratch,
    /// returning per-sample probability vectors in input order.
    #[deprecated(note = "allocates one Vec per sample per call; pack inputs flat and \
                         use `predict_proba_batch_with` with a reusable `MlpBatchScratch`")]
    pub fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut scratch = MlpBatchScratch::new();
        let mut flat = Vec::with_capacity(xs.len() * self.config.input);
        for x in xs {
            flat.extend_from_slice(x);
        }
        self.predict_proba_batch_with(xs.len(), &flat, &mut scratch)
            .chunks(self.config.output.max(1))
            .map(|p| p.to_vec())
            .collect()
    }

    /// Batched forward pass: `samples` inputs packed flat (sample-major
    /// `samples × input`) produce `samples × output` probabilities,
    /// borrowed from `scratch` and valid until the next pass.
    ///
    /// Each layer's matmul runs with the weight row as the *outer* loop
    /// and the sample as the inner loop, so one traversal of the weight
    /// matrix serves the whole batch (the row stays in L1 across
    /// samples). The per-sample dot product itself — `acc = bias`, then
    /// `acc += w[c] * x[c]` ascending `c` — and the per-sample softmax
    /// keep the exact operation order of [`Layer::forward`] /
    /// [`predict_proba_with`](Self::predict_proba_with), so every
    /// output is bit-identical to the scalar path (asserted by
    /// `tests/property_kernels.rs`).
    ///
    /// # Panics
    /// Panics when `inputs.len() != samples * config.input`.
    pub fn predict_proba_batch_with<'s>(
        &self,
        samples: usize,
        inputs: &[f64],
        scratch: &'s mut MlpBatchScratch,
    ) -> &'s [f64] {
        assert_eq!(
            inputs.len(),
            samples * self.config.input,
            "input dimension mismatch"
        );
        scratch.a.clear();
        scratch.a.extend_from_slice(inputs);
        for (i, layer) in self.layers.iter().enumerate() {
            let (rows, cols) = (layer.rows, layer.cols);
            scratch.b.clear();
            scratch.b.resize(samples * rows, 0.0);
            for r in 0..rows {
                let wrow = &layer.w[r * cols..(r + 1) * cols];
                let bias = layer.b[r];
                for s in 0..samples {
                    let x = &scratch.a[s * cols..(s + 1) * cols];
                    let mut acc = bias;
                    for (wi, xi) in wrow.iter().zip(x) {
                        acc += wi * xi;
                    }
                    scratch.b[s * rows + r] = acc;
                }
            }
            if i + 1 != self.layers.len() {
                for v in scratch.b.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        let out = self.config.output;
        scratch.probs.clear();
        scratch.probs.resize(samples * out, 0.0);
        for s in 0..samples {
            softmax_slice(
                &scratch.a[s * out..(s + 1) * out],
                &mut scratch.probs[s * out..(s + 1) * out],
            );
        }
        &scratch.probs
    }

    /// Index of the most probable class.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    /// Scratch-buffer variant of [`predict`](Self::predict).
    pub fn predict_with(&self, x: &[f64], scratch: &mut MlpScratch) -> usize {
        argmax(self.predict_proba_with(x, scratch))
    }

    /// Forward pass keeping every layer's post-activation output
    /// (needed for backprop) in `scratch.activations`, where
    /// `activations[0] = x` and `activations[i]` is the output of
    /// layer `i-1` after ReLU (raw logits for the last layer).
    /// Softmax probabilities land in `scratch.probs`.
    fn forward_full(&self, x: &[f64], scratch: &mut MlpScratch) {
        scratch
            .activations
            .resize_with(self.layers.len() + 1, Vec::new);
        scratch.activations[0].clear();
        scratch.activations[0].extend_from_slice(x);
        for (i, layer) in self.layers.iter().enumerate() {
            // Split so the input (index i) and output (index i+1)
            // buffers can be borrowed simultaneously.
            let (head, tail) = scratch.activations.split_at_mut(i + 1);
            let out = &mut tail[0];
            layer.forward(&head[i], out);
            let is_last = i + 1 == self.layers.len();
            if !is_last {
                for v in out.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
        softmax_into(&scratch.activations[self.layers.len()], &mut scratch.probs);
    }

    /// Trains on `(features, labels)` for the configured number of
    /// epochs; returns the mean cross-entropy loss per epoch.
    ///
    /// Sample order is shuffled deterministically per epoch from the
    /// model seed.
    ///
    /// # Panics
    /// Panics on empty data, dimension mismatch, or out-of-range labels.
    pub fn train(
        &mut self,
        features: &[Vec<f64>],
        labels: &[usize],
        tc: &TrainingConfig,
    ) -> Vec<f64> {
        assert!(!features.is_empty(), "training set must be non-empty");
        assert_eq!(
            features.len(),
            labels.len(),
            "features/labels length mismatch"
        );
        for f in features {
            assert_eq!(f.len(), self.config.input, "feature dimension mismatch");
        }
        assert!(
            labels.iter().all(|&l| l < self.config.output),
            "label out of range"
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut epoch_losses = Vec::with_capacity(tc.epochs);
        let mut scratch = MlpScratch::new();

        for _ in 0..tc.epochs {
            // Fisher–Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut total_loss = 0.0;
            for chunk in order.chunks(tc.batch_size.max(1)) {
                total_loss += self.train_batch(features, labels, chunk, tc, &mut scratch);
            }
            epoch_losses.push(total_loss / features.len() as f64);
        }
        epoch_losses
    }

    /// Runs one mini-batch update; returns the summed loss over the batch.
    fn train_batch(
        &mut self,
        features: &[Vec<f64>],
        labels: &[usize],
        batch: &[usize],
        tc: &TrainingConfig,
        scratch: &mut MlpScratch,
    ) -> f64 {
        let mut grads = Grads {
            gw: self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            gb: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        };
        let mut loss = 0.0;
        for &idx in batch {
            let x = &features[idx];
            let y = labels[idx];
            self.forward_full(x, scratch);
            loss += -(scratch.probs[y].max(1e-12)).ln();

            // Output delta: softmax + cross-entropy ⇒ p − onehot(y).
            scratch.delta.clear();
            scratch.delta.extend_from_slice(&scratch.probs);
            scratch.delta[y] -= 1.0;

            for li in (0..self.layers.len()).rev() {
                let input = &scratch.activations[li];
                let layer = &self.layers[li];
                // Accumulate gradients for this layer.
                for r in 0..layer.rows {
                    grads.gb[li][r] += scratch.delta[r];
                    let base = r * layer.cols;
                    for (c, xi) in input.iter().enumerate() {
                        grads.gw[li][base + c] += scratch.delta[r] * xi;
                    }
                }
                if li > 0 {
                    // Propagate delta through W and the ReLU derivative of
                    // the previous layer's output.
                    scratch.prev.clear();
                    scratch.prev.resize(layer.cols, 0.0);
                    for r in 0..layer.rows {
                        let base = r * layer.cols;
                        let d = scratch.delta[r];
                        for (c, p) in scratch.prev.iter_mut().enumerate() {
                            *p += layer.w[base + c] * d;
                        }
                    }
                    for (p, &a) in scratch.prev.iter_mut().zip(input.iter()) {
                        if a <= 0.0 {
                            *p = 0.0;
                        }
                    }
                    std::mem::swap(&mut scratch.delta, &mut scratch.prev);
                }
            }
        }

        // Apply SGD with momentum and weight decay.
        let scale = 1.0 / batch.len() as f64;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (i, w) in layer.w.iter_mut().enumerate() {
                let g = grads.gw[li][i] * scale + tc.weight_decay * *w;
                layer.vw[i] = tc.momentum * layer.vw[i] - tc.learning_rate * g;
                *w += layer.vw[i];
            }
            for (i, b) in layer.b.iter_mut().enumerate() {
                let g = grads.gb[li][i] * scale;
                layer.vb[i] = tc.momentum * layer.vb[i] - tc.learning_rate * g;
                *b += layer.vb[i];
            }
        }
        loss
    }

    /// Classification accuracy on a labelled set.
    pub fn accuracy(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let correct = features
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / features.len() as f64
    }
}

/// Numerically-stable softmax into a reusable buffer (max-shift, exp,
/// sum, divide — in that order, so every caller gets bit-identical
/// results regardless of buffer reuse).
fn softmax_into(logits: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.resize(logits.len(), 0.0);
    softmax_slice(logits, out);
}

/// The softmax kernel shared by the scalar and batched paths: same
/// max-shift/exp/sum/divide sequence over a pre-sized slice, so both
/// paths produce bit-identical probabilities.
fn softmax_slice(logits: &[f64], out: &mut [f64]) {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for (e, &l) in out.iter_mut().zip(logits) {
        *e = (l - max).exp();
    }
    let sum: f64 = out.iter().sum();
    for e in out.iter_mut() {
        *e /= sum;
    }
}

/// Index of the maximum element (first on ties).
fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let features = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![0, 1, 1, 0];
        (features, labels)
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut p = Vec::new();
        softmax_into(&[1000.0, 1001.0, 999.0], &mut p);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x.is_finite() && x > 0.0));
        assert!(p[1] > p[0] && p[0] > p[2]);
    }

    #[test]
    fn untrained_outputs_valid_distribution() {
        let mlp = Mlp::new(MlpConfig {
            input: 5,
            hidden: vec![8],
            output: 3,
            seed: 1,
        });
        let p = mlp.predict_proba(&[0.1, -0.2, 0.3, 0.0, 1.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn learns_xor() {
        let (features, labels) = xor_data();
        let mut mlp = Mlp::new(MlpConfig {
            input: 2,
            hidden: vec![8],
            output: 2,
            seed: 42,
        });
        let tc = TrainingConfig {
            learning_rate: 0.2,
            momentum: 0.9,
            batch_size: 4,
            epochs: 400,
            weight_decay: 0.0,
        };
        let losses = mlp.train(&features, &labels, &tc);
        assert!(
            losses.last().unwrap() < &0.1,
            "final loss {:?}",
            losses.last()
        );
        assert_eq!(mlp.accuracy(&features, &labels), 1.0);
    }

    #[test]
    fn loss_decreases_on_separable_data() {
        // Two Gaussian-ish clusters.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let t = i as f64 / 40.0;
            features.push(vec![t * 0.2, 1.0 + t * 0.1]);
            labels.push(0);
            features.push(vec![1.0 + t * 0.2, t * 0.1]);
            labels.push(1);
        }
        let mut mlp = Mlp::new(MlpConfig {
            input: 2,
            hidden: vec![4],
            output: 2,
            seed: 7,
        });
        let losses = mlp.train(&features, &labels, &TrainingConfig::default());
        assert!(losses.first().unwrap() > losses.last().unwrap());
        assert!(mlp.accuracy(&features, &labels) > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let (features, labels) = xor_data();
        let build = || {
            let mut m = Mlp::new(MlpConfig {
                input: 2,
                hidden: vec![6],
                output: 2,
                seed: 9,
            });
            m.train(
                &features,
                &labels,
                &TrainingConfig {
                    epochs: 20,
                    ..TrainingConfig::default()
                },
            );
            m
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same seed must give identical weights");
    }

    #[test]
    fn linear_model_no_hidden_layers() {
        let mut mlp = Mlp::new(MlpConfig {
            input: 2,
            hidden: vec![],
            output: 2,
            seed: 3,
        });
        // Linearly separable: class = x0 > x1.
        let features: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / 5.0])
            .collect();
        let labels: Vec<usize> = features.iter().map(|f| usize::from(f[0] > f[1])).collect();
        mlp.train(&features, &labels, &TrainingConfig::default());
        assert!(mlp.accuracy(&features, &labels) > 0.9);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mlp = Mlp::new(MlpConfig {
            input: 3,
            hidden: vec![],
            output: 2,
            seed: 0,
        });
        let _ = mlp.predict(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut mlp = Mlp::new(MlpConfig {
            input: 1,
            hidden: vec![],
            output: 2,
            seed: 0,
        });
        let _ = mlp.train(&[vec![1.0]], &[5], &TrainingConfig::default());
    }

    #[test]
    #[allow(deprecated)]
    fn scratch_path_is_bit_identical_to_allocating_path() {
        let (features, labels) = xor_data();
        let mut mlp = Mlp::new(MlpConfig {
            input: 2,
            hidden: vec![8, 6],
            output: 2,
            seed: 21,
        });
        mlp.train(
            &features,
            &labels,
            &TrainingConfig {
                epochs: 30,
                ..TrainingConfig::default()
            },
        );
        let mut scratch = MlpScratch::new();
        let inputs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i as f64) * 0.05, 1.0 - (i as f64) * 0.03])
            .collect();
        for x in &inputs {
            let fresh = mlp.predict_proba(x);
            let reused = mlp.predict_proba_with(x, &mut scratch).to_vec();
            assert_eq!(fresh, reused, "scratch reuse must not change any bit");
            assert_eq!(mlp.predict(x), mlp.predict_with(x, &mut scratch));
        }
        let batch = mlp.predict_proba_batch(&inputs);
        for (x, b) in inputs.iter().zip(&batch) {
            assert_eq!(&mlp.predict_proba(x), b, "batch path must match");
        }
    }

    #[test]
    fn batched_forward_is_bit_identical_to_scalar() {
        let mlp = Mlp::new(MlpConfig {
            input: 5,
            hidden: vec![7, 4],
            output: 3,
            seed: 17,
        });
        let inputs: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..5).map(|c| ((i * 5 + c) as f64).sin()).collect())
            .collect();
        let flat: Vec<f64> = inputs.iter().flatten().copied().collect();
        let mut batch = MlpBatchScratch::new();
        let probs = mlp.predict_proba_batch_with(inputs.len(), &flat, &mut batch);
        assert_eq!(probs.len(), inputs.len() * 3);
        let mut scalar = MlpScratch::new();
        for (s, x) in inputs.iter().enumerate() {
            assert_eq!(
                &probs[s * 3..(s + 1) * 3],
                mlp.predict_proba_with(x, &mut scalar),
                "sample {s} must match the scalar path bit-for-bit"
            );
        }
        // Empty batch is a no-op, not a panic.
        let empty = mlp.predict_proba_batch_with(0, &[], &mut batch);
        assert!(empty.is_empty());
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let (features, labels) = xor_data();
        let mut mlp = Mlp::new(MlpConfig {
            input: 2,
            hidden: vec![6],
            output: 2,
            seed: 11,
        });
        mlp.train(
            &features,
            &labels,
            &TrainingConfig {
                epochs: 50,
                ..TrainingConfig::default()
            },
        );
        let json = serde_json::to_string(&mlp).unwrap();
        let restored: Mlp = serde_json::from_str(&json).unwrap();
        for f in &features {
            assert_eq!(mlp.predict(f), restored.predict(f));
        }
    }
}
