//! Labelled datasets, feature normalization, and evaluation metrics.

use serde::{Deserialize, Serialize};

/// A labelled feature dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature vectors (all the same length).
    pub features: Vec<Vec<f64>>,
    /// Class labels, parallel to `features`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    /// Panics when the feature length differs from existing samples.
    pub fn push(&mut self, feature: Vec<f64>, label: usize) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), feature.len(), "inconsistent feature length");
        }
        self.features.push(feature);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Deterministic stratification-free split: every `k`-th sample goes
    /// to the second (test) part. `k = 5` gives an 80/20 split with both
    /// parts seeing all phases of a generated sweep — appropriate for the
    /// deterministic synthetic sweeps used in training.
    ///
    /// # Panics
    /// Panics when `k < 2`.
    pub fn split_every_kth(&self, k: usize) -> (Dataset, Dataset) {
        assert!(k >= 2, "k must be at least 2");
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for (i, (f, &l)) in self.features.iter().zip(&self.labels).enumerate() {
            if (i + 1) % k == 0 {
                test.push(f.clone(), l);
            } else {
                train.push(f.clone(), l);
            }
        }
        (train, test)
    }

    /// Per-class sample counts, indexed by label (length = max label + 1).
    pub fn class_counts(&self) -> Vec<usize> {
        let max = self.labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut counts = vec![0usize; max];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// Per-dimension standardization (x − mean) / std fitted on a training
/// set and applied to any sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f64>,
    inv_std: Vec<f64>,
}

impl Normalizer {
    /// Fits mean/std on the dataset.
    ///
    /// Dimensions with (near-)zero variance pass through unscaled, which
    /// is common for LBP bins that never fire on synthetic faces.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        assert!(
            !data.is_empty(),
            "cannot fit a normalizer on an empty dataset"
        );
        let n = data.len() as f64;
        let dim = data.dim();
        let mut mean = vec![0.0; dim];
        for f in &data.features {
            for (m, &x) in mean.iter_mut().zip(f) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for f in &data.features {
            for ((v, &x), &m) in var.iter_mut().zip(f).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let inv_std = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-9 {
                    1.0
                } else {
                    1.0 / s
                }
            })
            .collect();
        Normalizer { mean, inv_std }
    }

    /// Applies the transform to one sample.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        x.iter()
            .zip(&self.mean)
            .zip(&self.inv_std)
            .map(|((&xi, &m), &s)| (xi - m) * s)
            .collect()
    }

    /// Applies the transform into a reusable buffer (bit-identical to
    /// [`apply`](Self::apply), without the per-call allocation).
    pub fn apply_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        out.clear();
        out.extend(
            x.iter()
                .zip(&self.mean)
                .zip(&self.inv_std)
                .map(|((&xi, &m), &s)| (xi - m) * s),
        );
    }

    /// Appends the transformed sample to `out` **without clearing it** —
    /// the batched classifier packs every face's normalized feature
    /// vector into one flat sample-major buffer this way. Per sample,
    /// bit-identical to [`apply_into`](Self::apply_into).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn apply_extend(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        out.extend(
            x.iter()
                .zip(&self.mean)
                .zip(&self.inv_std)
                .map(|((&xi, &m), &s)| (xi - m) * s),
        );
    }

    /// Applies the transform to every sample of a dataset.
    pub fn apply_dataset(&self, data: &Dataset) -> Dataset {
        Dataset {
            features: data.features.iter().map(|f| self.apply(f)).collect(),
            labels: data.labels.clone(),
        }
    }
}

/// A confusion matrix over `n` classes: `m[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an empty `n × n` matrix.
    pub fn new(n: usize) -> Self {
        ConfusionMatrix {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Records one (actual, predicted) observation.
    ///
    /// # Panics
    /// Panics when either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(
            actual < self.n && predicted < self.n,
            "class index out of range"
        );
        self.counts[actual * self.n + predicted] += 1;
    }

    /// Count at `(actual, predicted)`.
    pub fn get(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual * self.n + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.n).map(|i| self.get(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Recall of class `c` (`None` when the class never occurs).
    pub fn recall(&self, c: usize) -> Option<f64> {
        let row: usize = (0..self.n).map(|p| self.get(c, p)).sum();
        (row > 0).then(|| self.get(c, c) as f64 / row as f64)
    }

    /// Precision of class `c` (`None` when the class is never predicted).
    pub fn precision(&self, c: usize) -> Option<f64> {
        let col: usize = (0..self.n).map(|a| self.get(a, c)).sum();
        (col > 0).then(|| self.get(c, c) as f64 / col as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64, 2.0 * i as f64], i % 2);
        }
        d
    }

    #[test]
    fn push_and_dims() {
        let d = sample_data();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.class_counts(), vec![5, 5]);
    }

    #[test]
    #[should_panic]
    fn inconsistent_dims_panic() {
        let mut d = sample_data();
        d.push(vec![1.0], 0);
    }

    #[test]
    fn split_every_kth_partitions() {
        let d = sample_data();
        let (train, test) = d.split_every_kth(5);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(train.len() + test.len(), d.len());
    }

    #[test]
    fn normalizer_standardizes() {
        let d = sample_data();
        let norm = Normalizer::fit(&d);
        let nd = norm.apply_dataset(&d);
        for dim in 0..2 {
            let mean: f64 = nd.features.iter().map(|f| f[dim]).sum::<f64>() / nd.len() as f64;
            let var: f64 = nd
                .features
                .iter()
                .map(|f| (f[dim] - mean).powi(2))
                .sum::<f64>()
                / nd.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn normalizer_handles_constant_dims() {
        let mut d = Dataset::new();
        d.push(vec![5.0, 1.0], 0);
        d.push(vec![5.0, 2.0], 1);
        let norm = Normalizer::fit(&d);
        let out = norm.apply(&[5.0, 1.5]);
        assert!(out[0].abs() < 1e-9, "constant dim centers to zero");
        assert!(out[0].is_finite() && out[1].is_finite());
    }

    #[test]
    fn confusion_matrix_metrics() {
        let mut m = ConfusionMatrix::new(2);
        // 3 true positives of class 0, 1 miss, 2 correct class 1.
        m.record(0, 0);
        m.record(0, 0);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 1);
        m.record(1, 1);
        assert_eq!(m.total(), 6);
        assert!((m.accuracy() - 5.0 / 6.0).abs() < 1e-12);
        assert!((m.recall(0).unwrap() - 0.75).abs() < 1e-12);
        assert!((m.precision(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ConfusionMatrix::new(3).recall(0), None);
        assert_eq!(ConfusionMatrix::new(3).accuracy(), 0.0);
    }
}
