//! Emotion recognition substrate for the DiEvent framework.
//!
//! Paper §II-C: *"To recognize the basic emotions (happy, sad, angry,
//! disgust, fear, and surprise), we consider the Local Binary Patterns
//! as a feature extractor and neural network as a classifier."*
//!
//! This crate implements precisely that, from scratch:
//!
//! * [`label`] — the six basic emotions plus neutral;
//! * [`lbp`] — Local Binary Pattern codes, the uniform-LBP mapping, and
//!   spatially-gridded LBP histograms as the face descriptor;
//! * [`mlp`] — a multilayer perceptron with ReLU hidden layers, softmax
//!   output, cross-entropy loss, and mini-batch SGD with momentum;
//! * [`dataset`] — feature/label containers, normalization, splits, and
//!   evaluation metrics;
//! * [`classifier`] — [`classifier::EmotionClassifier`], the trained
//!   LBP → MLP pipeline applied to face patches.
//!
//! The paper used a pretrained model on real faces; here the classifier
//! is trained on synthetically rendered expression patches (see
//! `dievent-scene::face`), exercising the identical code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod dataset;
pub mod label;
pub mod lbp;
pub mod mlp;

pub use classifier::{
    BatchPredictions, ClassifierScratch, EmotionClassifier, EmotionPrediction, ExtractArena,
    TrainReport,
};
pub use dataset::{ConfusionMatrix, Dataset, Normalizer};
pub use label::Emotion;
pub use lbp::{
    lbp_feature_vector, lbp_feature_vector_into, lbp_feature_vector_reference,
    lbp_feature_vector_with, lbp_histogram, uniform_lbp_image, LbpConfig, LbpScratch,
};
pub use mlp::{Mlp, MlpBatchScratch, MlpConfig, MlpScratch, TrainingConfig};
