//! Emotion labels: the six basic emotions the paper targets, plus neutral.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A facial emotion category.
///
/// The paper's classifier recognizes the six basic (Ekman) emotions;
/// `Neutral` is the resting state between expressive episodes and the
/// natural majority class at a dinner table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Emotion {
    /// No marked expression.
    Neutral,
    /// Happiness / enjoyment — the key signal for customer satisfaction.
    Happy,
    /// Sadness.
    Sad,
    /// Anger.
    Angry,
    /// Disgust — the key *negative* signal for recipe evaluation.
    Disgust,
    /// Fear.
    Fear,
    /// Surprise.
    Surprise,
}

impl Emotion {
    /// All emotion categories, in stable index order.
    pub const ALL: [Emotion; 7] = [
        Emotion::Neutral,
        Emotion::Happy,
        Emotion::Sad,
        Emotion::Angry,
        Emotion::Disgust,
        Emotion::Fear,
        Emotion::Surprise,
    ];

    /// Number of categories.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index of this emotion in `[0, COUNT)`.
    pub fn index(self) -> usize {
        match self {
            Emotion::Neutral => 0,
            Emotion::Happy => 1,
            Emotion::Sad => 2,
            Emotion::Angry => 3,
            Emotion::Disgust => 4,
            Emotion::Fear => 5,
            Emotion::Surprise => 6,
        }
    }

    /// Emotion from a stable index, or `None` when out of range.
    pub fn from_index(i: usize) -> Option<Emotion> {
        Self::ALL.get(i).copied()
    }

    /// Valence in `[-1, 1]`: how positive this emotion reads for
    /// satisfaction scoring (paper Fig. 5's overall-happiness fuses
    /// per-participant emotions; valence is the scalarization).
    pub fn valence(self) -> f64 {
        match self {
            Emotion::Happy => 1.0,
            Emotion::Surprise => 0.3,
            Emotion::Neutral => 0.0,
            Emotion::Fear => -0.6,
            Emotion::Sad => -0.7,
            Emotion::Angry => -0.8,
            Emotion::Disgust => -1.0,
        }
    }

    /// Returns `true` for the six *basic* emotions (everything except
    /// `Neutral`).
    pub fn is_basic(self) -> bool {
        self != Emotion::Neutral
    }
}

impl fmt::Display for Emotion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Emotion::Neutral => "neutral",
            Emotion::Happy => "happy",
            Emotion::Sad => "sad",
            Emotion::Angry => "angry",
            Emotion::Disgust => "disgust",
            Emotion::Fear => "fear",
            Emotion::Surprise => "surprise",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, &e) in Emotion::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
            assert_eq!(Emotion::from_index(i), Some(e));
        }
        assert_eq!(Emotion::from_index(Emotion::COUNT), None);
    }

    #[test]
    fn six_basic_emotions() {
        let basics: Vec<_> = Emotion::ALL.iter().filter(|e| e.is_basic()).collect();
        assert_eq!(basics.len(), 6, "paper lists exactly six basic emotions");
        assert!(!Emotion::Neutral.is_basic());
    }

    #[test]
    fn valence_ordering_is_sensible() {
        assert!(Emotion::Happy.valence() > Emotion::Neutral.valence());
        assert!(Emotion::Neutral.valence() > Emotion::Sad.valence());
        assert!(Emotion::Disgust.valence() <= Emotion::Angry.valence());
        for e in Emotion::ALL {
            assert!((-1.0..=1.0).contains(&e.valence()));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Emotion::Happy.to_string(), "happy");
        assert_eq!(Emotion::Disgust.to_string(), "disgust");
    }
}
