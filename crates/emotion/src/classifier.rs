//! The end-to-end emotion classifier: LBP features → normalizer → MLP.
//!
//! This is the component the paper describes as "a trained model for
//! emotion recognition" (§II-C): given a face patch it produces a
//! distribution over the six basic emotions plus neutral.

use crate::dataset::{ConfusionMatrix, Dataset, Normalizer};
use crate::label::Emotion;
use crate::lbp::{lbp_feature_vector, lbp_feature_vector_with, LbpConfig, LbpScratch};
use crate::mlp::{Mlp, MlpBatchScratch, MlpConfig, MlpScratch, TrainingConfig};
use dievent_video::GrayFrame;
use serde::{Deserialize, Serialize};

/// A prediction for one face patch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmotionPrediction {
    /// Most probable emotion.
    pub emotion: Emotion,
    /// Probability of the predicted emotion.
    pub confidence: f64,
    /// Full distribution, indexed by [`Emotion::index`].
    pub probabilities: Vec<f64>,
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean cross-entropy per epoch.
    pub epoch_losses: Vec<f64>,
    /// Accuracy on the held-out split.
    pub test_accuracy: f64,
    /// Confusion matrix on the held-out split.
    pub confusion: ConfusionMatrix,
}

/// LBP + MLP emotion classifier over face patches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmotionClassifier {
    lbp: LbpConfigSer,
    normalizer: Normalizer,
    mlp: Mlp,
}

/// Serializable mirror of [`LbpConfig`] (which stays `Copy`-simple).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LbpConfigSer {
    grid: usize,
    threshold: u8,
}

impl From<LbpConfig> for LbpConfigSer {
    fn from(c: LbpConfig) -> Self {
        LbpConfigSer {
            grid: c.grid,
            threshold: c.threshold,
        }
    }
}

impl From<LbpConfigSer> for LbpConfig {
    fn from(c: LbpConfigSer) -> Self {
        LbpConfig {
            grid: c.grid,
            threshold: c.threshold,
        }
    }
}

impl EmotionClassifier {
    /// Extracts the LBP descriptor used by this crate for a face patch.
    pub fn features(patch: &GrayFrame, lbp: &LbpConfig) -> Vec<f64> {
        lbp_feature_vector(patch, lbp)
    }

    /// Trains a classifier on labelled face patches.
    ///
    /// `hidden` sets the MLP hidden-layer widths; `seed` fixes all
    /// randomness. One fifth of the samples (every 5th) is held out to
    /// report test accuracy.
    ///
    /// # Panics
    /// Panics when fewer than 10 samples are provided.
    pub fn train(
        patches: &[(GrayFrame, Emotion)],
        lbp: LbpConfig,
        hidden: &[usize],
        seed: u64,
        tc: &TrainingConfig,
    ) -> (EmotionClassifier, TrainReport) {
        assert!(patches.len() >= 10, "need at least 10 training patches");
        let mut data = Dataset::new();
        for (patch, emotion) in patches {
            data.push(lbp_feature_vector(patch, &lbp), emotion.index());
        }
        let (train_raw, test_raw) = data.split_every_kth(5);
        let normalizer = Normalizer::fit(&train_raw);
        let train = normalizer.apply_dataset(&train_raw);
        let test = normalizer.apply_dataset(&test_raw);

        let mut mlp = Mlp::new(MlpConfig {
            input: lbp.feature_len(),
            hidden: hidden.to_vec(),
            output: Emotion::COUNT,
            seed,
        });
        let epoch_losses = mlp.train(&train.features, &train.labels, tc);

        let mut confusion = ConfusionMatrix::new(Emotion::COUNT);
        for (f, &l) in test.features.iter().zip(&test.labels) {
            confusion.record(l, mlp.predict(f));
        }
        let report = TrainReport {
            epoch_losses,
            test_accuracy: confusion.accuracy(),
            confusion,
        };
        (
            EmotionClassifier {
                lbp: lbp.into(),
                normalizer,
                mlp,
            },
            report,
        )
    }

    /// Classifies one face patch.
    ///
    /// Allocating wrapper around [`classify_with`](Self::classify_with);
    /// per-frame callers should hold a [`ClassifierScratch`].
    pub fn classify(&self, patch: &GrayFrame) -> EmotionPrediction {
        self.classify_with(patch, &mut ClassifierScratch::new())
    }

    /// Classifies one face patch using reusable buffers for the LBP
    /// descriptor, the normalized feature vector, and the MLP forward
    /// pass. Bit-identical to [`classify`](Self::classify).
    pub fn classify_with(
        &self,
        patch: &GrayFrame,
        scratch: &mut ClassifierScratch,
    ) -> EmotionPrediction {
        lbp_feature_vector_with(
            patch,
            &LbpConfig::from(self.lbp),
            &mut scratch.raw,
            &mut scratch.lbp,
        );
        self.normalizer.apply_into(&scratch.raw, &mut scratch.x);
        let probabilities = self.mlp.predict_proba_with(&scratch.x, &mut scratch.mlp);
        let (best, confidence) = probabilities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or((0, 0.0), |(i, &p)| (i, p));
        EmotionPrediction {
            emotion: Emotion::from_index(best).unwrap_or(Emotion::Neutral),
            confidence,
            probabilities: probabilities.to_vec(),
        }
    }

    /// Classifies every face patch of one frame in a single batched
    /// pass over the MLP weights.
    ///
    /// Allocating wrapper around
    /// [`classify_batch_with`](Self::classify_batch_with); hot-path
    /// callers should hold a per-worker [`ExtractArena`].
    pub fn classify_batch(&self, patches: &[&GrayFrame]) -> Vec<EmotionPrediction> {
        let mut arena = ExtractArena::new();
        let preds = self.classify_batch_with(patches, &mut arena);
        (0..preds.len()).map(|i| preds.prediction(i)).collect()
    }

    /// Batched classification into a reusable [`ExtractArena`]: every
    /// patch's LBP descriptor is extracted with the arena's shared bin
    /// image, normalized features are packed flat, and one
    /// [`Mlp::predict_proba_batch_with`] call runs the layer matmuls
    /// across all faces at once.
    ///
    /// Per face, bit-identical to [`classify_with`](Self::classify_with)
    /// (asserted by `tests/property_kernels.rs`): the descriptor,
    /// normalization, dot-product, softmax, and argmax all keep the
    /// scalar path's operation order. In steady state (arena buffers
    /// grown to the largest frame seen) this path performs zero heap
    /// allocation (asserted by `tests/alloc_steady_state.rs`).
    pub fn classify_batch_with<'s>(
        &self,
        patches: &[&GrayFrame],
        arena: &'s mut ExtractArena,
    ) -> BatchPredictions<'s> {
        let lbp = LbpConfig::from(self.lbp);
        arena.features.clear();
        for patch in patches {
            lbp_feature_vector_with(patch, &lbp, &mut arena.raw, &mut arena.lbp);
            self.normalizer
                .apply_extend(&arena.raw, &mut arena.features);
        }
        let probs =
            self.mlp
                .predict_proba_batch_with(patches.len(), &arena.features, &mut arena.mlp);
        BatchPredictions {
            probs,
            classes: Emotion::COUNT,
        }
    }
}

/// Per-worker arena for the batched extract path: LBP bin image, raw
/// descriptor, packed normalized features, and the batched MLP's
/// ping-pong activation planes — all reused across every frame the
/// worker processes. Buffers grow to the largest frame seen and are
/// never shrunk, so the steady-state extract path allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct ExtractArena {
    /// Raw (pre-normalization) LBP descriptor of the current face.
    raw: Vec<f64>,
    /// Packed normalized features, sample-major `faces × feature_len`.
    features: Vec<f64>,
    /// Shared LBP bin-image scratch.
    lbp: LbpScratch,
    /// Batched MLP forward buffers.
    mlp: MlpBatchScratch,
}

impl ExtractArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        ExtractArena::default()
    }
}

/// The result of one [`EmotionClassifier::classify_batch_with`] call:
/// a flat view of `faces × Emotion::COUNT` probabilities borrowed from
/// the arena, valid until its next use. Accessors replicate the scalar
/// path's argmax exactly.
#[derive(Debug, Clone, Copy)]
pub struct BatchPredictions<'a> {
    probs: &'a [f64],
    classes: usize,
}

impl<'a> BatchPredictions<'a> {
    /// Number of faces classified.
    pub fn len(&self) -> usize {
        self.probs.len() / self.classes.max(1)
    }

    /// Returns `true` when no faces were classified.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability distribution of face `i`, indexed by
    /// [`Emotion::index`].
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn probabilities(&self, i: usize) -> &'a [f64] {
        &self.probs[i * self.classes..(i + 1) * self.classes]
    }

    /// Most probable emotion and its probability for face `i` — the
    /// same `(argmax, confidence)` pair [`EmotionClassifier::classify_with`]
    /// reports.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn top(&self, i: usize) -> (Emotion, f64) {
        let (best, confidence) = self
            .probabilities(i)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or((0, 0.0), |(j, &p)| (j, p));
        (
            Emotion::from_index(best).unwrap_or(Emotion::Neutral),
            confidence,
        )
    }

    /// Materializes face `i` as an owned [`EmotionPrediction`]
    /// (allocates the probability vector).
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn prediction(&self, i: usize) -> EmotionPrediction {
        let (emotion, confidence) = self.top(i);
        EmotionPrediction {
            emotion,
            confidence,
            probabilities: self.probabilities(i).to_vec(),
        }
    }
}

/// Reusable buffers for [`EmotionClassifier::classify_with`]: one per
/// worker/chunk, reused across every face of every frame it processes.
#[derive(Debug, Default, Clone)]
pub struct ClassifierScratch {
    raw: Vec<f64>,
    x: Vec<f64>,
    lbp: LbpScratch,
    mlp: MlpScratch,
}

impl ClassifierScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        ClassifierScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic "expression" patches: each emotion gets a distinct
    /// mouth/eye texture layout, plus deterministic per-sample jitter.
    /// (The real renderer lives in `dievent-scene`; this sketch exists so
    /// the classifier crate is testable standalone.)
    fn sketch(emotion: Emotion, variant: u32) -> GrayFrame {
        let mut f = GrayFrame::new(32, 32, 160);
        let j = (variant % 3) as i64 - 1; // −1, 0, +1 pixel jitter
                                          // Eyes.
        f.fill_disk(10.0 + j as f64, 11.0, 2.0, 30);
        f.fill_disk(22.0 + j as f64, 11.0, 2.0, 30);
        match emotion {
            Emotion::Neutral => f.fill_rect(11 + j, 23, 10, 2, 60),
            Emotion::Happy => {
                // Upward arc.
                for x in 0..12i64 {
                    let y = 25 - ((x - 6).pow(2) / 6);
                    f.fill_rect(10 + x + j, y, 2, 2, 50);
                }
            }
            Emotion::Sad => {
                // Downward arc.
                for x in 0..12i64 {
                    let y = 22 + ((x - 6).pow(2) / 6);
                    f.fill_rect(10 + x + j, y, 2, 2, 50);
                }
            }
            Emotion::Angry => {
                f.fill_rect(9 + j, 22, 14, 3, 20);
                f.fill_rect(7 + j, 7, 7, 2, 20);
                f.fill_rect(18 + j, 7, 7, 2, 20);
            }
            Emotion::Disgust => {
                f.fill_rect(9 + j, 24, 8, 2, 40);
                f.fill_rect(14 + j, 20, 8, 2, 90);
            }
            Emotion::Fear => {
                f.fill_disk(16.0 + j as f64, 24.0, 3.0, 70);
                f.fill_rect(8 + j, 6, 16, 1, 40);
            }
            Emotion::Surprise => {
                f.fill_disk(16.0 + j as f64, 24.0, 4.5, 25);
            }
        }
        // Per-sample noise texture.
        f.mutate(|d| {
            for (i, px) in d.iter_mut().enumerate() {
                let n = ((i as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(variant * 97)
                    >> 28) as i32;
                *px = (*px as i32 + n - 8).clamp(0, 255) as u8;
            }
        });
        f
    }

    fn training_set(samples_per_class: u32) -> Vec<(GrayFrame, Emotion)> {
        let mut out = Vec::new();
        for v in 0..samples_per_class {
            for e in Emotion::ALL {
                out.push((sketch(e, v), e));
            }
        }
        out
    }

    #[test]
    fn trains_to_high_accuracy_on_sketches() {
        let patches = training_set(12);
        let tc = TrainingConfig {
            epochs: 30,
            ..TrainingConfig::default()
        };
        let (clf, report) =
            EmotionClassifier::train(&patches, LbpConfig::default(), &[32], 42, &tc);
        assert!(
            report.test_accuracy > 0.9,
            "test accuracy {} too low; confusion {:?}",
            report.test_accuracy,
            report.confusion
        );
        // Spot-check classification of fresh variants.
        for e in [Emotion::Happy, Emotion::Sad, Emotion::Surprise] {
            let pred = clf.classify(&sketch(e, 99));
            assert_eq!(pred.emotion, e, "misclassified {e}: {pred:?}");
        }
    }

    #[test]
    fn prediction_distribution_is_valid() {
        let patches = training_set(10);
        let tc = TrainingConfig {
            epochs: 10,
            ..TrainingConfig::default()
        };
        let (clf, _) = EmotionClassifier::train(&patches, LbpConfig::default(), &[16], 1, &tc);
        let pred = clf.classify(&sketch(Emotion::Neutral, 50));
        assert_eq!(pred.probabilities.len(), Emotion::COUNT);
        assert!((pred.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pred.confidence > 0.0 && pred.confidence <= 1.0);
        assert!(
            (pred.probabilities[pred.emotion.index()] - pred.confidence).abs() < 1e-12,
            "confidence must match the argmax probability"
        );
    }

    #[test]
    fn classify_with_matches_classify() {
        let patches = training_set(10);
        let tc = TrainingConfig {
            epochs: 10,
            ..TrainingConfig::default()
        };
        let (clf, _) = EmotionClassifier::train(&patches, LbpConfig::default(), &[16], 1, &tc);
        let mut scratch = ClassifierScratch::new();
        for e in Emotion::ALL {
            for v in [40u32, 41, 42] {
                let patch = sketch(e, v);
                let fresh = clf.classify(&patch);
                let reused = clf.classify_with(&patch, &mut scratch);
                assert_eq!(fresh, reused, "scratch reuse must not change any bit");
            }
        }
    }

    #[test]
    fn classify_batch_matches_classify_with() {
        let patches = training_set(10);
        let tc = TrainingConfig {
            epochs: 10,
            ..TrainingConfig::default()
        };
        let (clf, _) = EmotionClassifier::train(&patches, LbpConfig::default(), &[16], 1, &tc);
        let frames: Vec<GrayFrame> = Emotion::ALL.iter().map(|&e| sketch(e, 77)).collect();
        let refs: Vec<&GrayFrame> = frames.iter().collect();
        let mut arena = ExtractArena::new();
        let mut scratch = ClassifierScratch::new();
        // Twice through the same arena: reuse must not change any bit.
        for _ in 0..2 {
            let batch = clf.classify_batch_with(&refs, &mut arena);
            assert_eq!(batch.len(), frames.len());
            for (i, frame) in frames.iter().enumerate() {
                let scalar = clf.classify_with(frame, &mut scratch);
                assert_eq!(batch.prediction(i), scalar, "face {i} must match");
                let (emotion, confidence) = batch.top(i);
                assert_eq!((emotion, confidence), (scalar.emotion, scalar.confidence));
            }
        }
        let owned = clf.classify_batch(&refs);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(owned[i], clf.classify_with(frame, &mut scratch));
        }
        // Empty frames are a no-op, not a panic.
        let empty = clf.classify_batch_with(&[], &mut arena);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn losses_decrease_during_training() {
        let patches = training_set(8);
        let tc = TrainingConfig {
            epochs: 20,
            ..TrainingConfig::default()
        };
        let (_, report) = EmotionClassifier::train(&patches, LbpConfig::default(), &[16], 5, &tc);
        let first = report.epoch_losses.first().unwrap();
        let last = report.epoch_losses.last().unwrap();
        assert!(last < first, "loss should fall: {first} → {last}");
    }

    #[test]
    #[should_panic]
    fn too_few_samples_panics() {
        let patches = training_set(1);
        let _ = EmotionClassifier::train(
            &patches[..5],
            LbpConfig::default(),
            &[8],
            0,
            &TrainingConfig::default(),
        );
    }
}
