//! Self-lint gate: the workspace at HEAD must be clean under its own
//! linter — the same invariant CI enforces.

use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the repo root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let root = repo_root();
    assert!(
        root.join("lint.toml").is_file(),
        "repo root must carry lint.toml"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_dievent-lint"))
        .arg("--workspace")
        .current_dir(&root)
        .output()
        .expect("spawn dievent-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "dievent-lint --workspace found violations:\n{stdout}{stderr}"
    );
    assert!(stdout.contains("0 errors, 0 warnings"), "{stdout}");
}

#[test]
fn workspace_json_smoke() {
    let out = Command::new(env!("CARGO_BIN_EXE_dievent-lint"))
        .arg("--workspace")
        .arg("--json")
        .current_dir(repo_root())
        .output()
        .expect("spawn dievent-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(v["count"], serde_json::json!(0));
    assert_eq!(v["findings"].as_array().map(Vec::len), Some(0));
}
