//! Fixture tests: each rule has one passing and one firing fixture
//! under `tests/fixtures/<rule>/`, exercised through both the library
//! API and the CLI binary (exit codes, human and JSON output).

use dievent_lint::config::LintConfig;
use dievent_lint::Linter;
use std::path::PathBuf;
use std::process::{Command, Output};

const RULES: [&str; 5] = [
    "no_panic",
    "telemetry_coverage",
    "error_discipline",
    "float_eq",
    "must_use",
];

fn fixture_dir(rule: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
}

/// Per-case config: `lint_<case>.toml` when present (telemetry's stage
/// specs name the scanned file, so its cases need distinct configs),
/// plain `lint.toml` otherwise.
fn config_path(rule: &str, case: &str) -> PathBuf {
    let dir = fixture_dir(rule);
    let per_case = dir.join(format!("lint_{case}.toml"));
    if per_case.is_file() {
        per_case
    } else {
        dir.join("lint.toml")
    }
}

fn lint_cli(rule: &str, case: &str, json: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dievent-lint"));
    cmd.arg("--assume-lib")
        .arg("--config")
        .arg(config_path(rule, case))
        .arg(fixture_dir(rule).join(format!("{case}.rs")));
    if json {
        cmd.arg("--json");
    }
    cmd.output().expect("spawn dievent-lint")
}

#[test]
fn passing_fixtures_exit_zero() {
    for rule in RULES {
        let out = lint_cli(rule, "ok", false);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{rule}/ok.rs should be clean:\n{stdout}"
        );
        assert!(stdout.contains("0 errors"), "{rule}: {stdout}");
    }
}

#[test]
fn firing_fixtures_exit_one_and_name_their_rule() {
    for rule in RULES {
        let out = lint_cli(rule, "fire", false);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{rule}/fire.rs should fire:\n{stdout}"
        );
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "{rule} findings missing from:\n{stdout}"
        );
        // Findings carry file:line:col positions.
        assert!(stdout.contains("fire.rs:"), "{rule}: {stdout}");
    }
}

#[test]
fn firing_fixtures_through_the_library_api() {
    for rule in RULES {
        let dir = fixture_dir(rule);
        let config_src =
            std::fs::read_to_string(config_path(rule, "fire")).expect("fixture config");
        let config = LintConfig::parse(&config_src).expect("valid fixture config");
        let mut linter = Linter::new(config);
        let findings = linter
            .run(&dir, &[dir.join("fire.rs")], true)
            .expect("lint fire.rs");
        assert!(!findings.is_empty(), "{rule} produced no findings");
        assert!(
            findings.iter().all(|f| f.rule == rule),
            "{rule} config should only enable {rule}: {findings:?}"
        );
    }
}

#[test]
fn expected_finding_counts() {
    let count = |rule: &str| {
        let dir = fixture_dir(rule);
        let config_src =
            std::fs::read_to_string(config_path(rule, "fire")).expect("fixture config");
        let config = LintConfig::parse(&config_src).expect("valid fixture config");
        Linter::new(config)
            .run(&dir, &[dir.join("fire.rs")], true)
            .expect("lint fire.rs")
            .len()
    };
    assert_eq!(count("no_panic"), 3); // unwrap, expect, panic!
    assert_eq!(count("telemetry_coverage"), 1); // one uninstrumented stage
    assert_eq!(count("error_discipline"), 1); // one foreign-error API
    assert_eq!(count("float_eq"), 2); // literal ==, method-chain !=
    assert_eq!(count("must_use"), 3); // builder fn, setter, Result API
}

#[test]
fn json_output_is_parseable_and_complete() {
    let out = lint_cli("no_panic", "fire", true);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(v["count"], serde_json::json!(3));
    let findings = v["findings"].as_array().expect("findings array");
    assert_eq!(findings.len(), 3);
    for f in findings {
        assert_eq!(f["rule"], serde_json::json!("no_panic"));
        assert_eq!(f["severity"], serde_json::json!("error"));
        assert!(f["file"].as_str().is_some_and(|s| s.ends_with("fire.rs")));
        assert!(f["line"].as_u64().is_some_and(|n| n > 0));
        assert!(f["col"].as_u64().is_some_and(|n| n > 0));
        assert!(f["message"].as_str().is_some_and(|s| !s.is_empty()));
    }
}

#[test]
fn list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_dievent-lint"))
        .arg("--list-rules")
        .output()
        .expect("spawn dievent-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in RULES {
        assert!(stdout.contains(rule), "--list-rules missing {rule}");
    }
}

#[test]
fn bad_config_exits_two() {
    let dir = fixture_dir("no_panic");
    let out = Command::new(env!("CARGO_BIN_EXE_dievent-lint"))
        .arg("--assume-lib")
        .arg("--config")
        .arg(dir.join("ok.rs")) // a .rs file is not a valid lint.toml
        .arg(dir.join("ok.rs"))
        .output()
        .expect("spawn dievent-lint");
    assert_eq!(out.status.code(), Some(2));
}
