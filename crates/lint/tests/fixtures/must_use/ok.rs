//! Passing fixture: annotated builder chain and fallible API;
//! by-reference methods need no annotation.

pub struct Builder {
    cap: usize,
}

impl Builder {
    #[must_use = "the setter consumes and returns the builder"]
    pub fn cap(mut self, cap: usize) -> Self {
        self.cap = cap;
        self
    }

    #[must_use = "dropping the result discards the config or its error"]
    pub fn build(self) -> Result<Thing, Error> {
        Ok(Thing)
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }
}
