//! Firing fixture: unannotated builder setter, builder-returning fn,
//! and public Result API.

pub struct Builder {
    cap: usize,
}

pub fn builder() -> Builder {
    Builder { cap: 0 }
}

impl Builder {
    pub fn cap(mut self, cap: usize) -> Self {
        self.cap = cap;
        self
    }

    pub fn build(self) -> Result<Thing, Error> {
        Ok(Thing)
    }
}
