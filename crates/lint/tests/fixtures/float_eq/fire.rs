//! Firing fixture: exact equality on float literals and float-returning
//! method chains.

pub fn is_zero(w: f64) -> bool {
    w == 0.0
}

pub fn norms_match(a: &Vec3, b: &Vec3) -> bool {
    a.norm() != b.norm()
}
