//! Passing fixture: tolerance comparisons, integer equality, and the
//! annotated escape hatch.

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn empty(n: usize) -> bool {
    n == 0
}

pub fn is_sentinel(w: f64) -> bool {
    // lint:allow(float_eq): the sentinel is assigned, never computed
    w == -1.0
}
