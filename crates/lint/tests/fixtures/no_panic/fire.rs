//! Firing fixture: three panic paths in library code.

pub fn take(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn boom() -> u32 {
    panic!("unconditional")
}
