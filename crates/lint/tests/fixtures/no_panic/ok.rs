//! Passing fixture: panic-free library code, including the annotated
//! escape hatch and test-region exemption.

pub fn first_or_default(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or(0)
}

pub fn colon_position(msg: &str) -> usize {
    // lint:allow(no_panic): fixture invariant — callers pass "k: v" strings
    msg.find(':').expect("fixture invariant")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
