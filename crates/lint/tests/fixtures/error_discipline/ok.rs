//! Passing fixture: public fallible APIs speak the project error type;
//! std aliases and non-public fns are exempt.

pub fn load(path: &str) -> Result<Config, DiEventError> {
    parse(path)
}

pub fn show(f: &mut fmt::Formatter<'_>) -> fmt::Result {
    Ok(())
}

fn internal() -> Result<u32, String> {
    Ok(1)
}

pub(crate) fn helper() -> Result<u32, String> {
    Ok(2)
}
