//! Firing fixture: a public Result API with a foreign error type.

pub fn load(path: &str) -> Result<Config, String> {
    parse(path)
}
