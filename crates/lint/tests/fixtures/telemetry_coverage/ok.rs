//! Passing fixture: the configured stage opens a telemetry span.

pub fn run_stage(telemetry: &Telemetry) -> u32 {
    let _guard = telemetry.span("stage.run");
    42
}
