//! Firing fixture: the configured stage never opens a span.

pub fn run_stage(_telemetry: &Telemetry) -> u32 {
    42
}
