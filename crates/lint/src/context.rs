//! Per-file lint context: token streams, test-region detection, and
//! `lint:allow` escape hatches.
//!
//! Rules never re-lex or re-scan raw source; they see a [`FileContext`]
//! with a comment-free token stream (`code`), a map of lines that
//! belong to test code, and the set of allow directives. Test regions
//! are found purely from tokens: a `#[cfg(test)]` or `#[test]`
//! attribute marks the item it is attached to (its full brace-matched
//! extent), so rule implementations can stay one-pass and oblivious.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::HashMap;

/// Where a file sits in a crate — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` — the full rule set applies.
    Lib,
    /// Integration tests, benches, fixtures — panic freedom not required.
    Test,
    /// Examples.
    Example,
    /// Binary targets (`src/main.rs`, `src/bin/…`).
    Bin,
}

impl FileKind {
    /// Classifies a repo-relative path by its components.
    pub fn classify(path: &str) -> FileKind {
        let parts: Vec<&str> = path.split('/').collect();
        if parts
            .iter()
            .any(|p| *p == "tests" || *p == "benches" || *p == "fixtures")
        {
            FileKind::Test
        } else if parts.contains(&"examples") {
            FileKind::Example
        } else if parts.contains(&"bin") || parts.last() == Some(&"main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    }
}

/// Everything a rule may ask about one source file.
pub struct FileContext {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Crate directory name (`analysis`, `core`, …).
    pub crate_name: String,
    pub kind: FileKind,
    /// Comment-free token stream.
    pub code: Vec<Token>,
    /// Lines (1-based) covered by `#[cfg(test)]` / `#[test]` items.
    test_lines: Vec<bool>,
    /// `lint:allow(rule)` directives: line → rule ids ("*" = all).
    allows: HashMap<u32, Vec<String>>,
}

impl FileContext {
    /// Lexes `source` and computes regions/directives.
    pub fn new(path: &str, crate_name: &str, source: &str) -> FileContext {
        let kind = FileKind::classify(path);
        let tokens = lex(source);
        let line_count = source.lines().count() as u32;
        let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
        for t in tokens.iter().filter(|t| t.is_comment()) {
            for rule in parse_allow(&t.text) {
                allows.entry(t.line).or_default().push(rule.clone());
                allows.entry(t.line + 1).or_default().push(rule);
            }
        }
        let code: Vec<Token> = tokens.into_iter().filter(|t| !t.is_comment()).collect();
        let test_lines = test_regions(&code, line_count);
        FileContext {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            code,
            test_lines,
            allows,
        }
    }

    /// Is this 1-based line inside a test item?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Does a `lint:allow` directive cover `rule` on `line`?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule || r == "*"))
    }
}

/// Extracts rule ids from `lint:allow(rule_a, rule_b)` inside a comment.
fn parse_allow(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        if let Some(end) = rest.find(')') {
            for id in rest[..end].split(',') {
                let id = id.trim();
                if !id.is_empty() {
                    out.push(id.to_string());
                }
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    out
}

/// Marks every line covered by a test-gated item.
///
/// Walks the comment-free token stream; on `#[test]`, `#[cfg(test)]`
/// (or any `cfg`/`cfg_attr` attribute mentioning `test`), skips
/// trailing sibling attributes, then brace-matches the attached item
/// and marks its line span. An inner `#![cfg(test)]` marks the whole
/// file.
fn test_regions(code: &[Token], line_count: u32) -> Vec<bool> {
    let mut test = vec![false; line_count as usize + 2];
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_punct("#") {
            i += 1;
            continue;
        }
        let inner = code.get(i + 1).is_some_and(|t| t.is_punct("!"));
        let open = i + 1 + usize::from(inner);
        if !code.get(open).is_some_and(|t| t.is_punct("[")) {
            i += 1;
            continue;
        }
        let close = match bracket_end(code, open) {
            Some(c) => c,
            None => break,
        };
        if !attr_is_test(&code[open + 1..close]) {
            i = close + 1;
            continue;
        }
        if inner {
            test.iter_mut().for_each(|l| *l = true);
            return test;
        }
        // Skip further attributes stacked on the same item.
        let mut k = close + 1;
        while code.get(k).is_some_and(|t| t.is_punct("#"))
            && code.get(k + 1).is_some_and(|t| t.is_punct("["))
        {
            match bracket_end(code, k + 1) {
                Some(c) => k = c + 1,
                None => return test,
            }
        }
        let start_line = code[i].line;
        let end = item_end(code, k).unwrap_or(code.len() - 1);
        let end_line = code[end].line;
        for l in start_line..=end_line {
            if let Some(slot) = test.get_mut(l as usize) {
                *slot = true;
            }
        }
        i = end + 1;
    }
    test
}

/// Index of the `]` matching the `[` at `open`.
fn bracket_end(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Is this attribute body (`test`, `cfg(test)`, `cfg_attr(…, test)`) a
/// test gate? `cfg(any(test, …))` counts too — over-marking only makes
/// the linter more permissive, never noisier.
fn attr_is_test(body: &[Token]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") || t.is_ident("cfg_attr") => {
            body.iter().any(|t| t.is_ident("test"))
        }
        _ => false,
    }
}

/// Index of the token ending the item starting at `start`: the `}`
/// closing its body, or a top-level `;` for bodiless items.
fn item_end(code: &[Token], start: usize) -> Option<usize> {
    let mut braces = 0usize;
    let mut parens = 0usize;
    for (j, t) in code.iter().enumerate().skip(start) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => parens += 1,
            ")" | "]" => parens = parens.saturating_sub(1),
            "{" => braces += 1,
            "}" => {
                braces = braces.saturating_sub(1);
                if braces == 0 {
                    return Some(j);
                }
            }
            ";" if braces == 0 && parens == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_marked() {
        let src =
            "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", "x", src);
        assert!(!ctx.is_test_line(1));
        assert!(ctx.is_test_line(2));
        assert!(ctx.is_test_line(4));
        assert!(ctx.is_test_line(5));
        assert!(!ctx.is_test_line(6));
    }

    #[test]
    fn test_fn_with_stacked_attrs() {
        let src = "fn a() {}\n#[test]\n#[ignore]\nfn t() {\n    x.unwrap();\n}\nfn b() {}\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", "x", src);
        assert!(ctx.is_test_line(5));
        assert!(!ctx.is_test_line(7));
    }

    #[test]
    fn bodiless_cfg_items_end_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() {}\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", "x", src);
        assert!(ctx.is_test_line(2));
        assert!(!ctx.is_test_line(3));
    }

    #[test]
    fn allow_covers_own_and_next_line() {
        let src = "// lint:allow(no_panic): invariant holds\nfoo.unwrap();\nbar.unwrap();\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", "x", src);
        assert!(ctx.allowed("no_panic", 1));
        assert!(ctx.allowed("no_panic", 2));
        assert!(!ctx.allowed("no_panic", 3));
        assert!(!ctx.allowed("float_eq", 2));
    }

    #[test]
    fn file_kinds_by_path() {
        assert_eq!(FileKind::classify("crates/x/src/lib.rs"), FileKind::Lib);
        assert_eq!(FileKind::classify("crates/x/tests/t.rs"), FileKind::Test);
        assert_eq!(FileKind::classify("crates/x/src/bin/cli.rs"), FileKind::Bin);
        assert_eq!(
            FileKind::classify("examples/quickstart.rs"),
            FileKind::Example
        );
        assert_eq!(FileKind::classify("crates/x/benches/b.rs"), FileKind::Test);
    }

    #[test]
    fn cfg_attrs_unrelated_to_test_do_not_mark() {
        let src = "#[cfg(feature = \"x\")]\nfn gated() { y.unwrap(); }\n";
        let ctx = FileContext::new("crates/x/src/lib.rs", "x", src);
        assert!(!ctx.is_test_line(2));
    }
}
