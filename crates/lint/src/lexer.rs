//! A hand-rolled Rust token lexer.
//!
//! The linter needs exactly enough lexical structure to reason about
//! source *safely*: method names, macro bangs, operators, and — the
//! part naive `grep`-style linting gets wrong — which bytes are inside
//! strings, raw strings, char literals, and comments. The lexer is a
//! single forward pass producing a flat token list with 1-based
//! line/column positions; it does not parse, and it never fails — an
//! unterminated literal simply swallows the rest of the file, which is
//! the least-surprising recovery for a diagnostics tool.
//!
//! Token classes are deliberately coarse (one `Str` kind covers plain,
//! raw, and byte strings) because every rule in `rules/` only asks
//! "is this an identifier / a float literal / this exact operator?".

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `pub`, …).
    Ident,
    /// Raw identifier (`r#match`); text keeps the `r#` prefix.
    RawIdent,
    /// Lifetime (`'a`), text keeps the quote.
    Lifetime,
    /// Integer literal, any base, including suffixed (`42u8`).
    Int,
    /// Floating-point literal (`1.0`, `2.`, `1e-9`, `3f64`).
    Float,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` comment (doc or not); text includes the slashes.
    LineComment,
    /// `/* … */` comment, nesting-aware; text includes delimiters.
    BlockComment,
    /// Operator or delimiter; multi-char operators (`==`, `->`, `::`)
    /// are single tokens.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this text?
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// Is this a comment of either flavour?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes `source` into tokens. Never fails; see module docs.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (start, line, col) = (self.pos, self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(start, line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(start, line, col);
            } else if c == 'r' || c == 'b' {
                self.r_or_b(start, line, col);
            } else if is_ident_start(c) {
                self.ident(start, line, col);
            } else if c.is_ascii_digit() {
                self.number(start, line, col);
            } else if c == '\'' {
                self.quote(start, line, col);
            } else if c == '"' {
                self.bump();
                self.string_body(start, line, col);
            } else {
                self.punct(start, line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, start: usize, line: u32, col: u32) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.emit(TokenKind::LineComment, start, line, col);
    }

    fn block_comment(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.emit(TokenKind::BlockComment, start, line, col);
    }

    /// `r` / `b` starts: raw strings, byte strings, byte chars, raw
    /// identifiers — or a plain identifier when none of those match.
    fn r_or_b(&mut self, start: usize, line: u32, col: u32) {
        let c = self.peek(0);
        // How many prefix letters before a possible quote/hash?
        // r"  r#"  b"  b'  br"  br#"  (also rb, though Rust spells it br)
        let (prefix_len, second) = match (c, self.peek(1)) {
            (Some('b'), Some('r')) | (Some('r'), Some('b')) => (2, self.peek(2)),
            _ => (1, self.peek(1)),
        };
        match second {
            Some('"') => {
                for _ in 0..=prefix_len {
                    self.bump();
                }
                self.string_body(start, line, col);
            }
            Some('#') => {
                // Count hashes; a quote after them means a raw string,
                // an identifier char means a raw identifier (`r#match`).
                let mut hashes = 0;
                while self.peek(prefix_len + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(prefix_len + hashes) == Some('"') {
                    for _ in 0..(prefix_len + hashes + 1) {
                        self.bump();
                    }
                    self.raw_string_body(hashes, start, line, col);
                } else if c == Some('r') && hashes == 1 {
                    self.bump(); // r
                    self.bump(); // #
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.emit(TokenKind::RawIdent, start, line, col);
                } else {
                    self.ident(start, line, col);
                }
            }
            Some('\'') if c == Some('b') && prefix_len == 1 => {
                self.bump(); // b
                self.bump(); // '
                self.char_body(start, line, col);
            }
            _ => self.ident(start, line, col),
        }
    }

    fn ident(&mut self, start: usize, line: u32, col: u32) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.emit(TokenKind::Ident, start, line, col);
    }

    fn number(&mut self, start: usize, line: u32, col: u32) {
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.bump();
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
            // `1.5` and trailing-dot `1.` are floats; `1..2` is a range
            // and `1.max(…)` is a method call on an integer.
            if self.peek(0) == Some('.') {
                let after = self.peek(1);
                let method_or_range = after == Some('.') || after.is_some_and(is_ident_start);
                if !method_or_range {
                    float = true;
                    self.bump();
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
            if matches!(self.peek(0), Some('e' | 'E')) {
                let (a, b) = (self.peek(1), self.peek(2));
                let exponent = a.is_some_and(|c| c.is_ascii_digit())
                    || (matches!(a, Some('+' | '-')) && b.is_some_and(|c| c.is_ascii_digit()));
                if exponent {
                    float = true;
                    self.bump();
                    while self
                        .peek(0)
                        .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-' || c == '_')
                    {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`u8`, `f64`): a float suffix makes any literal float.
        if self.peek(0).is_some_and(is_ident_start) {
            let suffix_start = self.pos;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
            if suffix == "f32" || suffix == "f64" {
                float = true;
            }
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.emit(kind, start, line, col);
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, start: usize, line: u32, col: u32) {
        let next = self.peek(1);
        // Escaped → char. `'x'` (closing quote two ahead) → char.
        // Anything else (`'a>` in generics, `'static`) → lifetime.
        if next == Some('\\') || (next.is_some() && self.peek(2) == Some('\'')) {
            self.bump(); // '
            self.char_body(start, line, col);
        } else {
            self.bump(); // '
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            self.emit(TokenKind::Lifetime, start, line, col);
        }
    }

    /// Char-literal body after the opening quote (handles escapes).
    fn char_body(&mut self, start: usize, line: u32, col: u32) {
        if self.peek(0) == Some('\\') {
            self.bump();
            if self.peek(0) == Some('u') {
                while self.peek(0).is_some_and(|c| c != '}' && c != '\'') {
                    self.bump();
                }
            }
            self.bump(); // escaped char or '}'
        } else {
            self.bump(); // the char itself
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        self.emit(TokenKind::Char, start, line, col);
    }

    /// Plain/byte string body after the opening quote.
    fn string_body(&mut self, start: usize, line: u32, col: u32) {
        while let Some(c) = self.peek(0) {
            self.bump();
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
        self.emit(TokenKind::Str, start, line, col);
    }

    /// Raw string body after `r#…#"`: ends at `"` followed by `hashes` hashes.
    fn raw_string_body(&mut self, hashes: usize, start: usize, line: u32, col: u32) {
        while let Some(c) = self.peek(0) {
            self.bump();
            if c == '"' {
                let mut n = 0;
                while n < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    n += 1;
                }
                if n == hashes {
                    break;
                }
            }
        }
        self.emit(TokenKind::Str, start, line, col);
    }

    fn punct(&mut self, start: usize, line: u32, col: u32) {
        for op in OPERATORS {
            let matches = op
                .chars()
                .enumerate()
                .all(|(i, oc)| self.peek(i) == Some(oc));
            if matches {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.emit(TokenKind::Punct, start, line, col);
                return;
            }
        }
        self.bump();
        self.emit(TokenKind::Punct, start, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_calls() {
        let toks = lex("value.unwrap()");
        assert!(toks[0].is_ident("value"));
        assert!(toks[1].is_punct("."));
        assert!(toks[2].is_ident("unwrap"));
        assert!(toks[3].is_punct("("));
        assert!(toks[4].is_punct(")"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "a.unwrap()"; x"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"r#"panic!("x")"# r#match"##);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::RawIdent, "r#match".to_string()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"b"bytes" b'\n' br"raw""#);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Char);
        assert_eq!(toks[2].0, TokenKind::Str);
    }

    #[test]
    fn comments_are_tokens() {
        let toks = kinds("code(); // trailing unwrap()\n/* block /* nested */ done */ more");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.contains("nested")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "more"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("<'a, 'static> 'x' '\\n' '_'");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a".to_string()));
        assert_eq!(toks[3], (TokenKind::Lifetime, "'static".to_string()));
        assert_eq!(toks[5].0, TokenKind::Char);
        assert_eq!(toks[6].0, TokenKind::Char);
        assert_eq!(toks[7].0, TokenKind::Char);
    }

    #[test]
    fn numbers_int_vs_float() {
        let toks = kinds("1 1.0 2. 1e-9 3f64 0xFF 1.max(2) 0..10 7u32");
        let got: Vec<TokenKind> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Int | TokenKind::Float))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(
            got,
            vec![
                TokenKind::Int,   // 1
                TokenKind::Float, // 1.0
                TokenKind::Float, // 2.
                TokenKind::Float, // 1e-9
                TokenKind::Float, // 3f64
                TokenKind::Int,   // 0xFF
                TokenKind::Int,   // 1 (method call)
                TokenKind::Int,   // 2
                TokenKind::Int,   // 0
                TokenKind::Int,   // 10
                TokenKind::Int,   // 7u32
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("a == b != c -> d :: e ..= f");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "->", "::", "..="]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_literals_do_not_loop() {
        // Recovery: swallow to EOF, never panic or hang.
        assert!(!lex("let s = \"open").is_empty());
        assert!(!lex("r#\"open").is_empty());
        assert!(!lex("/* open").is_empty());
    }
}
