//! `dievent-lint` — self-hosted static analysis for the DiEvent
//! workspace.
//!
//! Clippy sees Rust; it cannot see *this project's* invariants: that
//! library code stays panic-free after the PR 2 `Result` migration,
//! that pipeline stages stay telemetry-instrumented, that the public
//! API speaks `DiEventError`, that the Eq. 3–5 geometry never compares
//! floats exactly, and that builders and fallible APIs are
//! `#[must_use]`. This crate is a dependency-free lint pass encoding
//! those rules: a hand-rolled lexer ([`lexer`]), per-file context with
//! test-region detection and `lint:allow` escapes ([`context`]), a
//! `lint.toml` config ([`config`]), a rule registry ([`rules`]), and a
//! diagnostics engine ([`diag`]) with human and `--json` output.
//!
//! Run it as `cargo run -p dievent-lint -- --workspace`; CI gates on a
//! clean pass.

#![forbid(unsafe_code)]

pub mod config;
pub mod context;
pub mod diag;
pub mod lexer;
pub mod rules;

use config::LintConfig;
use context::{FileContext, FileKind};
use diag::Finding;
use rules::Rule;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A configured lint pass over any number of files.
pub struct Linter {
    config: LintConfig,
    rules: Vec<Box<dyn Rule>>,
}

impl Linter {
    /// Builds a linter with every registered rule.
    pub fn new(config: LintConfig) -> Linter {
        Linter {
            config,
            rules: rules::all_rules(),
        }
    }

    /// `(id, description)` for every registered rule.
    pub fn rule_descriptions() -> Vec<(&'static str, &'static str)> {
        rules::all_rules()
            .iter()
            .map(|r| (r.id(), r.describe()))
            .collect()
    }

    /// Checks one prepared file context.
    pub fn check_file(&mut self, ctx: &FileContext, out: &mut Vec<Finding>) {
        for rule in &mut self.rules {
            rule.check(ctx, &self.config, out);
        }
    }

    /// Emits cross-file findings; call once after the last file.
    pub fn finish(&mut self, out: &mut Vec<Finding>) {
        for rule in &mut self.rules {
            rule.finish(&self.config, out);
        }
    }

    /// Lints a set of files under `root`, returning sorted findings.
    ///
    /// `assume_lib` forces every file to be treated as library code of
    /// a wildcard-matched crate — the fixture-testing escape hatch for
    /// files that live outside the workspace layout.
    pub fn run(
        &mut self,
        root: &Path,
        files: &[PathBuf],
        assume_lib: bool,
    ) -> io::Result<Vec<Finding>> {
        let mut findings = Vec::new();
        for file in files {
            let source = fs::read_to_string(file)?;
            let rel = relative_display(root, file);
            let mut ctx = FileContext::new(&rel, &crate_name_of(&rel), &source);
            if assume_lib {
                ctx.kind = FileKind::Lib;
                ctx.crate_name = "fixture".to_string();
            }
            self.check_file(&ctx, &mut findings);
        }
        self.finish(&mut findings);
        diag::sort(&mut findings);
        Ok(findings)
    }
}

/// Crate directory name for a repo-relative path
/// (`crates/analysis/src/…` → `analysis`; empty when not under `crates/`).
pub fn crate_name_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("").to_string()
    } else {
        String::new()
    }
}

/// Repo-relative display path with forward slashes.
fn relative_display(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

/// Collects every `crates/*/src/**/*.rs` file under `root`, sorted.
///
/// `src/` only by design: integration tests, benches, and examples are
/// exercised code, not the library surface the rules police — and the
/// lint's own firing fixtures live under `tests/`.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files under `dir`.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_names_from_paths() {
        assert_eq!(crate_name_of("crates/analysis/src/layers.rs"), "analysis");
        assert_eq!(crate_name_of("crates/core/src/bin/dievent.rs"), "core");
        assert_eq!(crate_name_of("examples/quickstart.rs"), "");
    }

    #[test]
    fn end_to_end_lint_of_a_source_string() {
        let cfg = LintConfig::parse("[no_panic]\ncrates = [\"demo\"]\n").expect("config");
        let mut linter = Linter::new(cfg);
        let ctx = FileContext::new(
            "crates/demo/src/lib.rs",
            "demo",
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }",
        );
        let mut out = Vec::new();
        linter.check_file(&ctx, &mut out);
        linter.finish(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "no_panic");
    }
}
