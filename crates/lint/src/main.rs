//! `dievent-lint` CLI.
//!
//! ```text
//! dievent-lint --workspace [--json] [--config PATH]
//! dievent-lint [--assume-lib] [--config PATH] FILE...
//! dievent-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings reported, 2 usage/config/IO error.

use dievent_lint::config::LintConfig;
use dievent_lint::{collect_rs_files, collect_workspace_files, diag, Linter};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
dievent-lint: self-hosted static analysis for the DiEvent workspace

USAGE:
    dievent-lint --workspace [OPTIONS]
    dievent-lint [OPTIONS] FILE...

OPTIONS:
    --workspace      lint every crates/*/src/**/*.rs under the repo root
    --json           emit findings as a single JSON object
    --config PATH    lint.toml to use (default: <repo root>/lint.toml)
    --assume-lib     treat explicit FILE args as library code of a
                     wildcard crate (fixture testing)
    --list-rules     print rule ids and descriptions, then exit 0
    --help           print this help

EXIT CODES:
    0  no findings        1  findings reported        2  usage or config error
";

struct Args {
    workspace: bool,
    json: bool,
    assume_lib: bool,
    list_rules: bool,
    config: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        assume_lib: false,
        list_rules: false,
        config: None,
        files: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--assume-lib" => args.assume_lib = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            "--config" => match it.next() {
                Some(p) => args.config = Some(PathBuf::from(p)),
                None => return Err("--config requires a path".to_string()),
            },
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.workspace && !args.list_rules && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace or file paths".to_string());
    }
    Ok(args)
}

/// Nearest ancestor of the current directory containing `lint.toml`.
fn find_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    cwd.ancestors()
        .find(|d| d.join("lint.toml").is_file())
        .map(Path::to_path_buf)
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    if args.list_rules {
        for (id, desc) in Linter::rule_descriptions() {
            println!("{id:<20} {desc}");
        }
        return Ok(true);
    }

    let root = match args.config.as_ref().and_then(|c| c.parent()) {
        _ if args.workspace || args.config.is_none() => find_root()
            .ok_or_else(|| "no lint.toml found in the current directory or above".to_string())?,
        Some(dir) if dir.as_os_str().is_empty() => PathBuf::from("."),
        Some(dir) => dir.to_path_buf(),
        None => PathBuf::from("."),
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let config_src = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = LintConfig::parse(&config_src).map_err(|e| e.to_string())?;

    let files = if args.workspace {
        collect_workspace_files(&root).map_err(|e| format!("workspace scan failed: {e}"))?
    } else {
        let mut files = Vec::new();
        for f in &args.files {
            if f.is_dir() {
                collect_rs_files(f, &mut files)
                    .map_err(|e| format!("cannot scan {}: {e}", f.display()))?;
            } else {
                files.push(f.clone());
            }
        }
        files
    };

    let mut linter = Linter::new(config);
    let findings = linter
        .run(&root, &files, args.assume_lib)
        .map_err(|e| format!("lint failed: {e}"))?;

    if args.json {
        print!("{}", diag::render_json(&findings));
    } else {
        print!("{}", diag::render_human(&findings));
    }
    Ok(findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            if message.is_empty() {
                // --help
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("dievent-lint: {message}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
