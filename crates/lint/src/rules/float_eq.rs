//! `float_eq`: no exact equality on floating-point expressions.
//!
//! The Eq. 3–5 ray–sphere code and everything downstream of it runs on
//! `f64`; an exact `==` there is either a latent bug (accumulated
//! rounding) or an undocumented invariant. Working from tokens, the
//! rule cannot type-check — it flags the cases it can prove float-ish:
//!
//! * a float *literal* on either side of `==` / `!=` (`x == 0.0`);
//! * an operand that is a call chain ending in a configured
//!   float-returning method (`float_methods`, e.g. `a.norm() == b`).
//!
//! That deliberately trades recall for precision: every hit is a real
//! float comparison, and the annotated escape hatch
//! (`lint:allow(float_eq)`) covers intentional exact comparisons such
//! as sentinel values.

use super::{match_paren, match_paren_back, Rule};
use crate::config::LintConfig;
use crate::context::{FileContext, FileKind};
use crate::diag::{Finding, Severity};
use crate::lexer::{Token, TokenKind};

pub struct FloatEq;

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "float_eq"
    }

    fn describe(&self) -> &'static str {
        "forbid ==/!= with float operands (use tolerances or total_cmp)"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &LintConfig, out: &mut Vec<Finding>) {
        let Some(rule) = cfg.rule(self.id()) else {
            return;
        };
        if ctx.kind != FileKind::Lib || !rule.covers_crate(&ctx.crate_name) {
            return;
        }
        let float_methods: Vec<&str> = rule
            .list("float_methods")
            .iter()
            .map(|s| s.as_str())
            .collect();
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if !(t.is_punct("==") || t.is_punct("!=")) {
                continue;
            }
            if ctx.is_test_line(t.line) || ctx.allowed(self.id(), t.line) {
                continue;
            }
            let float_left = i > 0
                && (code[i - 1].kind == TokenKind::Float
                    || left_is_float_call(code, i - 1, &float_methods));
            let float_right = code.get(i + 1).is_some_and(|r| r.kind == TokenKind::Float)
                || right_is_float_call(code, i + 1, &float_methods);
            if float_left || float_right {
                out.push(Finding {
                    file: ctx.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: self.id(),
                    severity: Severity::Error,
                    message: format!(
                        "`{}` on a float operand: compare with a tolerance (approx_eq / abs < eps) \
                         or use total_cmp for ordering",
                        t.text
                    ),
                });
            }
        }
    }
}

/// Is the expression ending at `last` a call of a float-returning
/// method — `….m(…)` with `m` configured?
fn left_is_float_call(code: &[Token], last: usize, methods: &[&str]) -> bool {
    if !code[last].is_punct(")") {
        return false;
    }
    let Some(open) = match_paren_back(code, last) else {
        return false;
    };
    open >= 2
        && code[open - 1].kind == TokenKind::Ident
        && methods.contains(&code[open - 1].text.as_str())
        && code[open - 2].is_punct(".")
}

/// Does the expression starting at `first` reduce to a call chain whose
/// final method is float-returning — `a.b.norm() == …` read forwards?
fn right_is_float_call(code: &[Token], first: usize, methods: &[&str]) -> bool {
    let mut j = first;
    // Optional leading receiver: identifier path or parenthesized expr.
    match code.get(j) {
        Some(t) if t.kind == TokenKind::Ident => j += 1,
        Some(t) if t.is_punct("(") => match match_paren(code, j) {
            Some(close) => j = close + 1,
            None => return false,
        },
        _ => return false,
    }
    let mut last_call: Option<String> = None;
    loop {
        match (code.get(j), code.get(j + 1)) {
            (Some(d), Some(n))
                if (d.is_punct(".") || d.is_punct("::")) && n.kind == TokenKind::Ident =>
            {
                if code.get(j + 2).is_some_and(|p| p.is_punct("(")) {
                    let Some(close) = match_paren(code, j + 2) else {
                        return false;
                    };
                    last_call = Some(n.text.clone());
                    j = close + 1;
                } else {
                    // Plain field access — keep walking the chain.
                    last_call = None;
                    j += 2;
                }
            }
            _ => break,
        }
    }
    last_call.is_some_and(|m| methods.contains(&m.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let cfg = LintConfig::parse(
            "[float_eq]\ncrates = [\"geometry\"]\nfloat_methods = [\"norm\", \"dot\", \"distance\"]\n",
        )
        .expect("config");
        let ctx = FileContext::new("crates/geometry/src/sphere.rs", "geometry", src);
        let mut out = Vec::new();
        FloatEq.check(&ctx, &cfg, &mut out);
        out
    }

    #[test]
    fn literal_comparisons_fire_both_sides() {
        let out = findings("fn f(w: f64) -> bool { w == 0.0 || 1.0 != w }");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn float_method_chains_fire() {
        let out = findings("fn f(a: Vec3, b: Vec3) -> bool { a.norm() == b.norm() }");
        assert_eq!(out.len(), 1); // one finding per comparison
        let out = findings("fn f(a: Vec3, d: f64) -> bool { d == a.dot(a) }");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn integer_and_ordering_comparisons_pass() {
        let out = findings("fn f(n: usize, w: f64) -> bool { n == 0 && w <= 0.0 && w > 1.0 }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_and_tests_are_exempt() {
        let out = findings(
            "fn f(w: f64) -> bool {\n    // lint:allow(float_eq): sentinel is bit-exact\n    w == -1.0\n}\n\
             #[cfg(test)]\nmod tests { fn t(w: f64) { assert!(w == 0.5); } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
