//! `no_panic`: forbid panicking constructs in non-test library code.
//!
//! Flags `.unwrap()` / `.expect(…)` calls (also path form
//! `Option::unwrap(x)`) and `panic!` / `todo!` / `unimplemented!`
//! invocations. Asserts are allowed: they state invariants rather than
//! convert recoverable conditions into aborts. Provably-unreachable
//! sites opt out with `// lint:allow(no_panic): <invariant>`.

use super::Rule;
use crate::config::LintConfig;
use crate::context::{FileContext, FileKind};
use crate::diag::{Finding, Severity};
use crate::lexer::TokenKind;

pub struct NoPanic;

const METHODS: &[&str] = &["unwrap", "expect"];
const MACROS: &[&str] = &["panic", "todo", "unimplemented"];

impl Rule for NoPanic {
    fn id(&self) -> &'static str {
        "no_panic"
    }

    fn describe(&self) -> &'static str {
        "forbid unwrap/expect/panic!/todo!/unimplemented! in non-test library code"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &LintConfig, out: &mut Vec<Finding>) {
        let Some(rule) = cfg.rule(self.id()) else {
            return;
        };
        if ctx.kind != FileKind::Lib || !rule.covers_crate(&ctx.crate_name) {
            return;
        }
        let code = &ctx.code;
        for (i, t) in code.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let construct = if METHODS.contains(&t.text.as_str()) {
                let called = i > 0
                    && (code[i - 1].is_punct(".") || code[i - 1].is_punct("::"))
                    && code.get(i + 1).is_some_and(|n| n.is_punct("("));
                called.then(|| format!("`.{}()`", t.text))
            } else if MACROS.contains(&t.text.as_str()) {
                code.get(i + 1)
                    .is_some_and(|n| n.is_punct("!"))
                    .then(|| format!("`{}!`", t.text))
            } else {
                None
            };
            let Some(construct) = construct else { continue };
            if ctx.is_test_line(t.line) || ctx.allowed(self.id(), t.line) {
                continue;
            }
            out.push(Finding {
                file: ctx.path.clone(),
                line: t.line,
                col: t.col,
                rule: self.id(),
                severity: Severity::Error,
                message: format!(
                    "{construct} in library code: plumb a Result or restructure; \
                     if provably unreachable, annotate `// lint:allow(no_panic): <invariant>`"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let cfg = LintConfig::parse("[no_panic]\ncrates = [\"x\"]\n").expect("config");
        let ctx = FileContext::new("crates/x/src/lib.rs", "x", src);
        let mut out = Vec::new();
        NoPanic.check(&ctx, &cfg, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let out = findings("fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); todo!(); }");
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].rule, "no_panic");
    }

    #[test]
    fn ignores_tests_strings_comments_and_lookalikes() {
        let out = findings(
            "fn f() { a.unwrap_or(0); let s = \"x.unwrap()\"; /* panic!() */ }\n\
             #[cfg(test)]\nmod tests { fn t() { z.unwrap(); } }",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let out = findings(
            "fn f() {\n    // lint:allow(no_panic): index checked above\n    a.unwrap();\n    b.unwrap();\n}",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn path_form_unwrap_is_flagged() {
        let out = findings("fn f(o: Option<u8>) -> u8 { Option::unwrap(o) }");
        assert_eq!(out.len(), 1);
    }
}
