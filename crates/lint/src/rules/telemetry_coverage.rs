//! `telemetry_coverage`: pipeline stages must stay instrumented.
//!
//! PR 1 instrumented every stage with spans; nothing stopped a later
//! refactor from dropping one. `lint.toml` names the stage functions
//! (`stages = ["session.rs::camera_worker", …]`); each must contain a
//! call to one of the span-opening APIs (`span_apis`, default
//! `span`/`span_under`). A stage whose file or function no longer
//! exists is itself a finding — renames must update the config, so the
//! guard can't silently rot.

use super::{match_brace, Rule};
use crate::config::LintConfig;
use crate::context::FileContext;
use crate::diag::{Finding, Severity};
use std::collections::HashSet;

#[derive(Default)]
pub struct TelemetryCoverage {
    /// Stage specs whose file has been visited.
    seen: HashSet<String>,
}

const DEFAULT_APIS: [&str; 2] = ["span", "span_under"];

impl Rule for TelemetryCoverage {
    fn id(&self) -> &'static str {
        "telemetry_coverage"
    }

    fn describe(&self) -> &'static str {
        "stage functions named in lint.toml must open a telemetry span"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &LintConfig, out: &mut Vec<Finding>) {
        let Some(rule) = cfg.rule(self.id()) else {
            return;
        };
        let apis: Vec<&str> = if rule.list("span_apis").is_empty() {
            DEFAULT_APIS.to_vec()
        } else {
            rule.list("span_apis").iter().map(|s| s.as_str()).collect()
        };
        let sigs = super::scan_fns(&ctx.code);
        for spec in rule.list("stages") {
            let Some((file, fn_name)) = spec.rsplit_once("::") else {
                continue;
            };
            if !ctx.path.ends_with(file) {
                continue;
            }
            self.seen.insert(spec.clone());
            let mut found = false;
            for sig in sigs.iter().filter(|s| s.name == fn_name) {
                found = true;
                let instrumented = sig.body_open.is_some_and(|open| {
                    let close = match_brace(&ctx.code, open).unwrap_or(ctx.code.len());
                    ctx.code[open..close].iter().enumerate().any(|(k, t)| {
                        apis.iter().any(|api| t.is_ident(api))
                            && k > 0
                            && ctx.code[open + k - 1].is_punct(".")
                    })
                });
                if !instrumented && !ctx.allowed(self.id(), sig.line) {
                    out.push(Finding {
                        file: ctx.path.clone(),
                        line: sig.line,
                        col: sig.col,
                        rule: self.id(),
                        severity: Severity::Error,
                        message: format!(
                            "stage function `{fn_name}` opens no telemetry span \
                             (expected a call to one of: {})",
                            apis.join(", ")
                        ),
                    });
                }
            }
            if !found {
                out.push(Finding {
                    file: ctx.path.clone(),
                    line: 1,
                    col: 1,
                    rule: self.id(),
                    severity: Severity::Error,
                    message: format!(
                        "stage `{spec}` configured in lint.toml has no function \
                         `{fn_name}` in this file — update lint.toml after renames"
                    ),
                });
            }
        }
    }

    fn finish(&mut self, cfg: &LintConfig, out: &mut Vec<Finding>) {
        let Some(rule) = cfg.rule(self.id()) else {
            return;
        };
        for spec in rule.list("stages") {
            if !self.seen.contains(spec) {
                out.push(Finding {
                    file: "lint.toml".to_string(),
                    line: 1,
                    col: 1,
                    rule: self.id(),
                    severity: Severity::Error,
                    message: format!(
                        "stage `{spec}` configured in lint.toml matched no scanned file \
                         — the stage moved or the path suffix is wrong"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: &str = "[telemetry_coverage]\ncrates = [\"*\"]\nstages = [\"worker.rs::run_stage\"]\nspan_apis = [\"span\", \"span_under\"]\n";

    fn check_src(src: &str) -> Vec<Finding> {
        let cfg = LintConfig::parse(CFG).expect("config");
        let ctx = FileContext::new("crates/x/src/worker.rs", "x", src);
        let mut rule = TelemetryCoverage::default();
        let mut out = Vec::new();
        rule.check(&ctx, &cfg, &mut out);
        rule.finish(&cfg, &mut out);
        out
    }

    #[test]
    fn instrumented_stage_passes() {
        let out = check_src(
            "fn run_stage(t: &Telemetry) {\n    let _s = t.span(\"stage.x\");\n    work();\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn uninstrumented_stage_fires() {
        let out = check_src("fn run_stage(t: &Telemetry) {\n    work();\n}");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("opens no telemetry span"));
    }

    #[test]
    fn missing_stage_fn_fires() {
        let out = check_src("fn renamed_stage(t: &Telemetry) { let _s = t.span(\"x\"); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no function"));
    }

    #[test]
    fn unmatched_file_reports_at_finish() {
        let cfg = LintConfig::parse(CFG).expect("config");
        let ctx = FileContext::new("crates/x/src/other.rs", "x", "fn f() {}");
        let mut rule = TelemetryCoverage::default();
        let mut out = Vec::new();
        rule.check(&ctx, &cfg, &mut out);
        rule.finish(&cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("matched no scanned file"));
    }
}
