//! `error_discipline`: the public API speaks one error language.
//!
//! PR 2 made `DiEventError` the error type of `dievent-core`'s public
//! surface; this rule keeps it that way. Every unrestricted-`pub`
//! function in a configured crate whose return type mentions `Result`
//! must also mention the configured error type (default
//! `DiEventError`). Qualified std aliases (`fmt::Result`,
//! `io::Result`) are exempt — they are different, well-known contracts.

use super::Rule;
use crate::config::LintConfig;
use crate::context::{FileContext, FileKind};
use crate::diag::{Finding, Severity};

pub struct ErrorDiscipline;

const DEFAULT_ERROR: &str = "DiEventError";
const DEFAULT_QUALIFIERS: [&str; 2] = ["fmt", "io"];

impl Rule for ErrorDiscipline {
    fn id(&self) -> &'static str {
        "error_discipline"
    }

    fn describe(&self) -> &'static str {
        "public Result-returning fns in configured crates must use the project error type"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &LintConfig, out: &mut Vec<Finding>) {
        let Some(rule) = cfg.rule(self.id()) else {
            return;
        };
        if ctx.kind != FileKind::Lib || !rule.covers_crate(&ctx.crate_name) {
            return;
        }
        let error_type = rule.string("error_type").unwrap_or(DEFAULT_ERROR);
        let extra: Vec<&str> = rule
            .list("allowed_qualifiers")
            .iter()
            .map(|s| s.as_str())
            .collect();
        let code = &ctx.code;
        for sig in super::scan_fns(code) {
            if !sig.is_pub || ctx.is_test_line(sig.line) || ctx.allowed(self.id(), sig.line) {
                continue;
            }
            let Some((start, end)) = sig.ret else {
                continue;
            };
            let result_at = (start..end).find(|&j| code[j].is_ident("Result"));
            let Some(j) = result_at else { continue };
            // `fmt::Result` / `io::Result` style aliases are exempt.
            if j >= 2 && code[j - 1].is_punct("::") {
                let q = &code[j - 2].text;
                if DEFAULT_QUALIFIERS.contains(&q.as_str()) || extra.contains(&q.as_str()) {
                    continue;
                }
            }
            if !super::contains_ident(code, (start, end), error_type) {
                out.push(Finding {
                    file: ctx.path.clone(),
                    line: sig.line,
                    col: sig.col,
                    rule: self.id(),
                    severity: Severity::Error,
                    message: format!(
                        "public fn `{}` returns Result without `{error_type}` — \
                         public APIs must surface the project error type",
                        sig.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let cfg = LintConfig::parse(
            "[error_discipline]\ncrates = [\"core\"]\nerror_type = \"DiEventError\"\n",
        )
        .expect("config");
        let ctx = FileContext::new("crates/core/src/api.rs", "core", src);
        let mut out = Vec::new();
        ErrorDiscipline.check(&ctx, &cfg, &mut out);
        out
    }

    #[test]
    fn foreign_error_type_fires() {
        let out = findings("pub fn run(&self) -> Result<A, String> { x() }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("run"));
    }

    #[test]
    fn project_error_type_passes() {
        let out = findings("pub fn run(&self) -> Result<A, DiEventError> { x() }");
        assert!(out.is_empty());
    }

    #[test]
    fn fmt_result_and_private_fns_are_exempt() {
        let out = findings(
            "pub fn show(&self, f: &mut F) -> fmt::Result { ok() }\n\
             fn private() -> Result<A, String> { x() }\n\
             pub(crate) fn internal() -> Result<A, String> { x() }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn non_result_returns_pass() {
        let out = findings("pub fn len(&self) -> usize { 0 }");
        assert!(out.is_empty());
    }
}
