//! `must_use`: builder chains and fallible public APIs can't be
//! silently dropped.
//!
//! Two shapes must carry a `#[must_use]` attribute in configured
//! crates:
//!
//! * **builder methods** — `pub fn …(self, …) -> Self` (by-value
//!   receiver) and public fns returning a configured builder type
//!   (`builder_types`). Dropping the return value discards the whole
//!   configured-so-far builder;
//! * **public `Result` APIs** — belt over the language's own braces:
//!   the attribute survives `Result`-alias refactors and documents
//!   intent at the definition. Use the message form
//!   (`#[must_use = "…"]`) so clippy's `double_must_use` stays quiet.
//!
//! The scan understands `macro_rules!` bodies (`pub fn $name(…)`), so
//! generated builder setters are covered too.

use super::{match_paren_back, Rule};
use crate::config::LintConfig;
use crate::context::{FileContext, FileKind};
use crate::diag::{Finding, Severity};
use crate::lexer::{Token, TokenKind};

pub struct MustUse;

impl Rule for MustUse {
    fn id(&self) -> &'static str {
        "must_use"
    }

    fn describe(&self) -> &'static str {
        "builder methods returning Self and public Result APIs must carry #[must_use]"
    }

    fn check(&mut self, ctx: &FileContext, cfg: &LintConfig, out: &mut Vec<Finding>) {
        let Some(rule) = cfg.rule(self.id()) else {
            return;
        };
        if ctx.kind != FileKind::Lib || !rule.covers_crate(&ctx.crate_name) {
            return;
        }
        let builder_types: Vec<&str> = rule
            .list("builder_types")
            .iter()
            .map(|s| s.as_str())
            .collect();
        let code = &ctx.code;
        for sig in super::scan_fns(code) {
            if ctx.is_test_line(sig.line) || ctx.allowed(self.id(), sig.line) {
                continue;
            }
            let Some(ret) = sig.ret else { continue };
            let ret_toks = &code[ret.0..ret.1];
            let returns_self_only = ret_toks.len() == 1 && ret_toks[0].is_ident("Self");
            let chains_builder =
                sig.is_pub && returns_self_only && takes_self_by_value(code, sig.args);
            let returns_builder = sig.is_pub
                && ret_toks
                    .iter()
                    .any(|t| builder_types.contains(&t.text.as_str()));
            let returns_result = sig.is_pub
                && ret_toks.iter().enumerate().any(|(k, t)| {
                    // `fmt::Result`-style aliases are their own contract.
                    t.is_ident("Result") && !(k > 0 && ret_toks[k - 1].is_punct("::"))
                });
            let reason = if chains_builder {
                "builder method returning Self"
            } else if returns_builder {
                "fn returning a builder"
            } else if returns_result {
                "public fallible API"
            } else {
                continue;
            };
            if !has_must_use_attr(code, sig.fn_idx) {
                out.push(Finding {
                    file: ctx.path.clone(),
                    line: sig.line,
                    col: sig.col,
                    rule: self.id(),
                    severity: Severity::Error,
                    message: format!(
                        "{reason} `{}` lacks #[must_use] — add \
                         `#[must_use = \"…\"]` with a one-line consequence",
                        sig.name
                    ),
                });
            }
        }
    }
}

/// Does the argument list start with a by-value `self` receiver
/// (`self`, `mut self` — not `&self` / `&mut self`)?
fn takes_self_by_value(code: &[Token], args: (usize, usize)) -> bool {
    let toks = &code[args.0..args.1];
    match toks.first() {
        Some(t) if t.is_ident("self") => true,
        Some(t) if t.is_ident("mut") => toks.get(1).is_some_and(|n| n.is_ident("self")),
        _ => false,
    }
}

/// Walks backwards over the attributes stacked on the item whose `fn`
/// keyword sits at `fn_idx`, looking for `#[must_use…]`. Steps over
/// visibility/modifier keywords and `macro_rules!` repetition tails
/// (`$( … )*`) so generated items are handled.
fn has_must_use_attr(code: &[Token], fn_idx: usize) -> bool {
    let mut i = fn_idx;
    loop {
        if i == 0 {
            return false;
        }
        let p = &code[i - 1];
        if p.kind == TokenKind::Ident
            && matches!(
                p.text.as_str(),
                "pub" | "const" | "async" | "unsafe" | "extern"
            )
        {
            i -= 1;
        } else if p.kind == TokenKind::Str {
            i -= 1; // extern "C"
        } else if p.is_punct("]") {
            // An attribute — scan its body.
            let mut depth = 0usize;
            let mut open = None;
            for j in (0..i).rev() {
                if code[j].is_punct("]") {
                    depth += 1;
                } else if code[j].is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(j);
                        break;
                    }
                }
            }
            let Some(open) = open else { return false };
            if !(open > 0 && code[open - 1].is_punct("#")) {
                return false;
            }
            if code[open + 1..i - 1].iter().any(|t| t.is_ident("must_use")) {
                return true;
            }
            i = open - 1;
        } else if p.is_punct("*") || p.is_punct("+") {
            // `$( … )*` repetition tail: step to before the `$(`.
            if i >= 2 && code[i - 2].is_punct(")") {
                match match_paren_back(code, i - 2) {
                    Some(g) if g > 0 && code[g - 1].is_punct("$") => i = g - 1,
                    _ => return false,
                }
            } else {
                return false;
            }
        } else if p.is_punct(")") {
            // `pub(crate)` restriction — step over it.
            match match_paren_back(code, i - 1) {
                Some(g) => i = g,
                None => return false,
            }
        } else {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let cfg = LintConfig::parse(
            "[must_use]\ncrates = [\"core\"]\nbuilder_types = [\"PipelineConfigBuilder\"]\n",
        )
        .expect("config");
        let ctx = FileContext::new("crates/core/src/pipeline.rs", "core", src);
        let mut out = Vec::new();
        MustUse.check(&ctx, &cfg, &mut out);
        out
    }

    #[test]
    fn unannotated_builder_method_fires() {
        let out = findings("impl B { pub fn cap(mut self, n: usize) -> Self { self } }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("builder method"));
    }

    #[test]
    fn annotated_builder_method_passes() {
        let out = findings(
            "impl B { #[must_use = \"returns the builder\"] pub fn cap(mut self, n: usize) -> Self { self } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn public_result_api_fires_and_annotation_passes() {
        let fired = findings("pub fn run(&self) -> Result<A, E> { x() }");
        assert_eq!(fired.len(), 1);
        let ok = findings(
            "#[must_use = \"handle the error\"] pub fn run(&self) -> Result<A, E> { x() }",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn macro_body_setters_are_covered() {
        let src = "macro_rules! setters { ($($(#[$doc:meta])* $name:ident: $ty:ty),*) => { $( $(#[$doc])* pub fn $name(mut self, v: $ty) -> Self { self } )* }; }";
        let fired = findings(src);
        assert_eq!(fired.len(), 1, "{fired:?}");
        let fixed = src.replace("pub fn $name", "#[must_use = \"x\"] pub fn $name");
        assert!(findings(&fixed).is_empty());
    }

    #[test]
    fn ref_self_and_private_fns_pass() {
        let out = findings(
            "impl B { pub fn view(&self) -> Self { self.clone() } fn go(self) -> Self { self } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn builder_type_return_fires() {
        let out = findings("pub fn builder() -> PipelineConfigBuilder { b() }");
        assert_eq!(out.len(), 1);
    }
}
