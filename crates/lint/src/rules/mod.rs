//! The lint registry and the shared token-pattern helpers rules build on.
//!
//! A rule sees one [`FileContext`] at a time through [`Rule::check`]
//! and may carry state across files (e.g. which configured stages have
//! been seen); [`Rule::finish`] runs once after the last file. Rules
//! are registered in [`all_rules`] — adding a rule is: write the
//! module, add it to the vector, give it a `lint.toml` section.

use crate::config::LintConfig;
use crate::context::FileContext;
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};

mod error_discipline;
mod float_eq;
mod must_use;
mod no_panic;
mod telemetry_coverage;

/// One static-analysis rule.
pub trait Rule {
    /// Stable id — the `lint.toml` section name and the
    /// `lint:allow(id)` key.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Examines one file.
    fn check(&mut self, ctx: &FileContext, cfg: &LintConfig, out: &mut Vec<Finding>);
    /// Runs after every file has been checked (cross-file conclusions).
    fn finish(&mut self, _cfg: &LintConfig, _out: &mut Vec<Finding>) {}
}

/// Every shipped rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panic::NoPanic),
        Box::new(telemetry_coverage::TelemetryCoverage::default()),
        Box::new(error_discipline::ErrorDiscipline),
        Box::new(float_eq::FloatEq),
        Box::new(must_use::MustUse),
    ]
}

/// A lexical function signature found by [`scan_fns`].
pub(crate) struct FnSig {
    /// Index of the `fn` token.
    pub fn_idx: usize,
    /// Function name; macro-body placeholders keep their sigil (`$name`).
    pub name: String,
    /// Line/col of the name token (diagnostics anchor).
    pub line: u32,
    pub col: u32,
    /// `pub` without a visibility restriction.
    pub is_pub: bool,
    /// Token range of the argument list, exclusive of parens.
    pub args: (usize, usize),
    /// Token range of the return type (after `->`, before body/`;`/`where`).
    pub ret: Option<(usize, usize)>,
    /// Index of the body `{`, when the fn has one.
    pub body_open: Option<usize>,
}

/// Scans a comment-free token stream for function items.
///
/// Purely lexical: it finds `fn name … ( … ) [-> …] [{ | ;]` shapes,
/// which covers ordinary items, impl methods, and `macro_rules!` bodies
/// (`fn $name(…)`). Function *pointer types* (`fn(usize)`) have no name
/// and are skipped.
pub(crate) fn scan_fns(code: &[Token]) -> Vec<FnSig> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let fn_idx = i;
        // Name: ident, raw ident, or a macro placeholder `$name`.
        let (name, name_tok, after_name) = match code.get(i + 1) {
            Some(t) if t.kind == TokenKind::Ident || t.kind == TokenKind::RawIdent => {
                (t.text.clone(), t, i + 2)
            }
            Some(t) if t.is_punct("$") => match code.get(i + 2) {
                Some(n) if n.kind == TokenKind::Ident => (format!("${}", n.text), n, i + 3),
                _ => {
                    i += 1;
                    continue;
                }
            },
            _ => {
                i += 1;
                continue;
            }
        };
        let (line, col) = (name_tok.line, name_tok.col);
        let mut j = after_name;
        if code.get(j).is_some_and(|t| t.is_punct("<")) {
            j = skip_generics(code, j);
        }
        if !code.get(j).is_some_and(|t| t.is_punct("(")) {
            i += 1;
            continue;
        }
        let args_open = j;
        let args_close = match match_paren(code, args_open) {
            Some(c) => c,
            None => break,
        };
        let mut k = args_close + 1;
        let ret = if code.get(k).is_some_and(|t| t.is_punct("->")) {
            let start = k + 1;
            let mut end = start;
            while end < code.len()
                && !(code[end].is_punct("{")
                    || code[end].is_punct(";")
                    || code[end].is_ident("where"))
            {
                end += 1;
            }
            k = end;
            Some((start, end))
        } else {
            None
        };
        // Skip a `where` clause to the body / terminator.
        while k < code.len() && !(code[k].is_punct("{") || code[k].is_punct(";")) {
            k += 1;
        }
        let body_open = code.get(k).filter(|t| t.is_punct("{")).map(|_| k);
        out.push(FnSig {
            fn_idx,
            name,
            line,
            col,
            is_pub: is_unrestricted_pub(code, fn_idx),
            args: (args_open + 1, args_close),
            ret,
            body_open,
        });
        i = args_close + 1;
    }
    out
}

/// Does the item whose `fn` sits at `fn_idx` have unrestricted `pub`
/// visibility? Walks back over modifier keywords; `pub(crate)` and
/// friends do not count as public API.
fn is_unrestricted_pub(code: &[Token], fn_idx: usize) -> bool {
    let mut i = fn_idx;
    while i > 0 {
        let p = &code[i - 1];
        if p.is_ident("const")
            || p.is_ident("async")
            || p.is_ident("unsafe")
            || p.is_ident("extern")
        {
            i -= 1;
        } else if p.kind == TokenKind::Str {
            // `extern "C"` ABI string.
            i -= 1;
        } else if p.is_ident("pub") {
            return true;
        } else if p.is_punct(")") {
            // Possible `pub(crate)` / `pub(in …)` restriction.
            match match_paren_back(code, i - 1) {
                Some(open) if open > 0 && code[open - 1].is_ident("pub") => return false,
                _ => return false,
            }
        } else {
            return false;
        }
    }
    false
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn match_paren(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close` (backwards walk).
pub(crate) fn match_paren_back(code: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        if code[j].is_punct(")") {
            depth += 1;
        } else if code[j].is_punct("(") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
pub(crate) fn match_brace(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Returns the index just past the `>` closing the `<` at `open`.
/// Shifted operators (`<<`, `>>`) count double; arrows don't count.
pub(crate) fn skip_generics(code: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < code.len() {
        let t = &code[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        j += 1;
        if depth <= 0 {
            return j;
        }
    }
    j
}

/// Do any tokens in the range carry this identifier text?
pub(crate) fn contains_ident(code: &[Token], range: (usize, usize), text: &str) -> bool {
    code[range.0..range.1].iter().any(|t| t.is_ident(text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn scan_finds_plain_and_macro_fns() {
        let code = lex("pub fn run(&self, r: &R) -> Result<A, E> { body() }\nfn helper() {}\npub fn $name(mut self, v: $ty) -> Self { self }");
        let sigs = scan_fns(&code);
        assert_eq!(sigs.len(), 3);
        assert_eq!(sigs[0].name, "run");
        assert!(sigs[0].is_pub);
        assert!(sigs[0].ret.is_some());
        assert_eq!(sigs[1].name, "helper");
        assert!(!sigs[1].is_pub);
        assert_eq!(sigs[2].name, "$name");
        assert!(sigs[2].is_pub);
    }

    #[test]
    fn restricted_pub_is_not_public() {
        let code = lex("pub(crate) fn internal() -> Result<(), E> {}");
        let sigs = scan_fns(&code);
        assert!(!sigs[0].is_pub);
    }

    #[test]
    fn generics_are_skipped() {
        let code = lex("pub fn gen<T: Into<Vec<u8>>>(x: T) -> Result<T, E> { x }");
        let sigs = scan_fns(&code);
        assert_eq!(sigs[0].name, "gen");
        let ret = sigs[0].ret.expect("has return type");
        assert!(contains_ident(&code, ret, "Result"));
    }

    #[test]
    fn fn_pointer_types_are_skipped() {
        let code = lex("fn takes(f: fn(usize) -> usize) -> usize { f(1) }");
        let sigs = scan_fns(&code);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].name, "takes");
    }
}
