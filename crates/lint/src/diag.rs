//! Diagnostics: findings, ordering, and the two output formats.

use std::fmt::Write as _;

/// How bad a finding is. Every shipped rule currently reports errors;
/// the distinction exists so downstream rules can ship advisory checks
/// without breaking CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic: `file:line:col` plus rule id and message.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

/// Sorts findings into stable reporting order (file, line, col, rule).
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Human-readable report, one finding per line, with a summary footer.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: {} [{}] {}",
            f.file,
            f.line,
            f.col,
            f.severity.as_str(),
            f.rule,
            f.message
        );
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    let _ = writeln!(
        out,
        "dievent-lint: {} error{}, {} warning{}",
        errors,
        if errors == 1 { "" } else { "s" },
        warnings,
        if warnings == 1 { "" } else { "s" },
    );
    out
}

/// Machine-readable report: a single JSON object with a findings array.
/// Hand-rolled emission (the linter is dependency-free); strings are
/// escaped per RFC 8259.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"severity\":{},\"message\":{}}}",
            json_string(&f.file),
            f.line,
            f.col,
            json_string(f.rule),
            json_string(f.severity.as_str()),
            json_string(&f.message),
        );
    }
    let _ = write!(out, "],\"count\":{}}}", findings.len());
    out.push('\n');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, msg: &str) -> Finding {
        Finding {
            file: file.into(),
            line,
            col: 1,
            rule: "no_panic",
            severity: Severity::Error,
            message: msg.into(),
        }
    }

    #[test]
    fn human_output_has_locations_and_summary() {
        let out = render_human(&[finding("a.rs", 3, "boom")]);
        assert!(out.contains("a.rs:3:1: error [no_panic] boom"));
        assert!(out.contains("1 error, 0 warnings"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let out = render_json(&[finding("a.rs", 1, "say \"no\"\nplease")]);
        assert!(out.contains(r#"\"no\""#));
        assert!(out.contains(r#"\n"#));
        assert!(out.contains("\"count\":1"));
    }

    #[test]
    fn sort_is_by_file_then_line() {
        let mut v = vec![finding("b.rs", 1, "x"), finding("a.rs", 9, "y")];
        sort(&mut v);
        assert_eq!(v[0].file, "a.rs");
    }
}
