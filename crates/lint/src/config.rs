//! `lint.toml` — configuration for the rule set.
//!
//! The linter is dependency-free, so this module carries a minimal
//! TOML-subset reader: `[section]` headers, `key = value` pairs with
//! string / bool / integer / string-array values (arrays may span
//! lines), `#` comments, and nothing else. That subset is the whole
//! configuration language on purpose — rules read flat lists of crate
//! names, qualified function names, and identifiers.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation problem in `lint.toml`.
#[derive(Debug)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// One parsed value.
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    List(Vec<String>),
}

/// Flat section → key → value document.
#[derive(Debug, Default)]
struct Doc {
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

fn parse_doc(source: &str) -> Result<Doc, ConfigError> {
    let mut doc = Doc::default();
    let mut section = String::new();
    let mut lines = source.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            doc.sections.entry(section.clone()).or_default();
            continue;
        }
        let (key, mut value_src) = match line.split_once('=') {
            Some((k, v)) => (k.trim().to_string(), v.trim().to_string()),
            None => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                })
            }
        };
        // Multi-line arrays: keep consuming lines until brackets balance.
        while value_src.starts_with('[') && !brackets_balanced(&value_src) {
            match lines.next() {
                Some((_, cont)) => {
                    value_src.push(' ');
                    value_src.push_str(strip_comment(cont).trim());
                }
                None => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unterminated array for key `{key}`"),
                    })
                }
            }
        }
        let value = parse_value(&value_src).map_err(|message| ConfigError {
            line: lineno,
            message,
        })?;
        doc.sections
            .entry(section.clone())
            .or_default()
            .insert(key, value);
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn brackets_balanced(src: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in src.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(src: &str) -> Result<Value, String> {
    let src = src.trim();
    if src == "true" {
        return Ok(Value::Bool(true));
    }
    if src == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = src.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for item in split_top_level(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item)? {
                Value::Str(s) => items.push(s),
                _ => return Err(format!("arrays may only contain strings: `{item}`")),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(body) = src.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string: `{src}`"))?;
        return Ok(Value::Str(unescape(body)));
    }
    if let Ok(n) = src.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(format!("unsupported value: `{src}`"))
}

/// Splits an array body on commas outside strings.
fn split_top_level(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Scope + knobs for one rule, as read from its `lint.toml` section.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Crate directory names the rule applies to; `"*"` = every crate.
    pub crates: Vec<String>,
    /// Rule-specific string lists (`stages`, `float_methods`, …).
    pub lists: BTreeMap<String, Vec<String>>,
    /// Rule-specific scalars (`error_type`, …).
    pub strings: BTreeMap<String, String>,
}

impl RuleConfig {
    /// Does this rule apply to the given crate?
    pub fn covers_crate(&self, crate_name: &str) -> bool {
        self.crates.iter().any(|c| c == "*" || c == crate_name)
    }

    /// A named string-list knob ([] when absent).
    pub fn list(&self, key: &str) -> &[String] {
        self.lists.get(key).map_or(&[], |v| v.as_slice())
    }

    /// A named string knob.
    pub fn string(&self, key: &str) -> Option<&str> {
        self.strings.get(key).map(|s| s.as_str())
    }
}

/// The whole parsed configuration: one [`RuleConfig`] per section.
#[derive(Debug, Default)]
pub struct LintConfig {
    rules: BTreeMap<String, RuleConfig>,
}

impl LintConfig {
    /// Parses `lint.toml` content.
    pub fn parse(source: &str) -> Result<LintConfig, ConfigError> {
        let doc = parse_doc(source)?;
        let mut rules = BTreeMap::new();
        for (section, entries) in doc.sections {
            let mut rule = RuleConfig::default();
            for (key, value) in entries {
                match (key.as_str(), value) {
                    ("crates", Value::List(v)) => rule.crates = v,
                    (_, Value::List(v)) => {
                        rule.lists.insert(key, v);
                    }
                    (_, Value::Str(s)) => {
                        rule.strings.insert(key, s);
                    }
                    (_, Value::Bool(b)) => {
                        rule.strings.insert(key, b.to_string());
                    }
                    (_, Value::Int(n)) => {
                        rule.strings.insert(key, n.to_string());
                    }
                }
            }
            rules.insert(section, rule);
        }
        Ok(LintConfig { rules })
    }

    /// Configuration for a rule id; a missing section disables the rule.
    pub fn rule(&self, id: &str) -> Option<&RuleConfig> {
        self.rules.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[no_panic]
crates = ["analysis", "core"]

[telemetry_coverage]
crates = ["*"]
stages = [
    "session.rs::camera_worker",  # trailing comment
    "parse.rs::parse_frames",
]
span_apis = ["span", "span_under"]

[error_discipline]
crates = ["core"]
error_type = "DiEventError"
"#;

    #[test]
    fn parses_sections_lists_and_strings() {
        let cfg = LintConfig::parse(SAMPLE).expect("parses");
        let np = cfg.rule("no_panic").expect("section");
        assert!(np.covers_crate("core"));
        assert!(!np.covers_crate("geometry"));
        let tc = cfg.rule("telemetry_coverage").expect("section");
        assert!(tc.covers_crate("anything"));
        assert_eq!(tc.list("stages").len(), 2);
        assert_eq!(tc.list("stages")[1], "parse.rs::parse_frames");
        let ed = cfg.rule("error_discipline").expect("section");
        assert_eq!(ed.string("error_type"), Some("DiEventError"));
        assert!(cfg.rule("unknown").is_none());
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(LintConfig::parse("[s]\nkey value").is_err());
        assert!(LintConfig::parse("[s]\nkey = \"open").is_err());
        assert!(LintConfig::parse("[s]\nkey = [\"a\"").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = LintConfig::parse("[s]\nname = \"a#b\"").expect("parses");
        assert_eq!(cfg.rule("s").and_then(|r| r.string("name")), Some("a#b"));
    }
}
