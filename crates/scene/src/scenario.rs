//! Scenario assembly, simulation, and ground truth.
//!
//! A [`Scenario`] bundles the static world (table, seats, cameras),
//! the gaze script, and the dynamics parameters; [`Scenario::simulate`]
//! produces the per-frame [`GroundTruth`], including the §III prototype
//! whose look-at structure reproduces Figures 7–9 of the paper.

// Per-participant state updates index several parallel arrays.
#![allow(clippy::needless_range_loop)]

use crate::emotion_dyn::{EmotionDynamics, EmotionDynamicsConfig};
use crate::gaze::{GazeSchedule, GazeTarget, ScheduleBuilder};
use crate::participant::{Participant, ParticipantState};
use crate::rig::CameraRig;
use crate::table::DiningTable;
use dievent_geometry::{CameraIntrinsics, Ray, Sphere, Vec2, Vec3};
use dievent_video::VideoSpec;
use dievent_vision::contract;
use serde::{Deserialize, Serialize};

/// A complete synthetic recording setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// The table everyone sits around.
    pub table: DiningTable,
    /// Participants in seat order (P1 = index 0).
    pub participants: Vec<Participant>,
    /// The synchronized camera rig.
    pub rig: CameraRig,
    /// The gaze script.
    pub schedule: GazeSchedule,
    /// Emotion dynamics parameters.
    pub emotion_config: EmotionDynamicsConfig,
    /// Stream properties (resolution, fps).
    pub spec: VideoSpec,
    /// Master seed for all scenario randomness.
    pub seed: u64,
    /// Head sway amplitude in metres.
    pub sway_amplitude: f64,
    /// Per-frame slerp fraction of head-forward toward the gaze
    /// direction (1.0 = heads snap instantly).
    pub head_turn_rate: f64,
}

/// Ground-truth state of every participant at one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneSnapshot {
    /// Frame index.
    pub frame: usize,
    /// Time in seconds.
    pub time: f64,
    /// Per-participant state, in participant order.
    pub states: Vec<ParticipantState>,
}

impl SceneSnapshot {
    /// The *geometric* look-at matrix at the configured attention
    /// radius: `m[i][j] = 1` when `i`'s gaze ray hits the sphere of
    /// radius `radius` centred at `j`'s head, and `j` is the *nearest*
    /// such hit (a ray cannot look through one head at another).
    pub fn lookat_matrix(&self, radius: f64) -> Vec<Vec<u8>> {
        let n = self.states.len();
        let mut m = vec![vec![0u8; n]; n];
        for i in 0..n {
            let ray = Ray::new(self.states[i].head, self.states[i].gaze);
            let mut best: Option<(usize, f64)> = None;
            for j in 0..n {
                if i == j {
                    continue;
                }
                if let Some(hit) = Sphere::new(self.states[j].head, radius).intersect_ray(&ray) {
                    let d = hit.d_near.max(0.0);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((j, d));
                    }
                }
            }
            if let Some((j, _)) = best {
                m[i][j] = 1;
            }
        }
        m
    }

    /// Pairs `(i, j)` with mutual eye contact (`i < j`) at the given
    /// attention radius — the paper's EC criterion
    /// `m[x][y] = m[y][x] = 1`.
    pub fn eye_contacts(&self, radius: f64) -> Vec<(usize, usize)> {
        let m = self.lookat_matrix(radius);
        let n = m.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if m[i][j] == 1 && m[j][i] == 1 {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// The full simulated recording: one snapshot per frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Snapshots, one per frame.
    pub snapshots: Vec<SceneSnapshot>,
}

impl GroundTruth {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Returns `true` when no frames were simulated.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Sum of geometric look-at matrices over all frames — the
    /// ground-truth Fig. 9 summary matrix.
    pub fn summary_matrix(&self, radius: f64) -> Vec<Vec<u32>> {
        let n = self.snapshots.first().map_or(0, |s| s.states.len());
        let mut sum = vec![vec![0u32; n]; n];
        for snap in &self.snapshots {
            let m = snap.lookat_matrix(radius);
            for i in 0..n {
                for j in 0..n {
                    sum[i][j] += m[i][j] as u32;
                }
            }
        }
        sum
    }
}

impl Scenario {
    /// The §III prototype: four participants around a meeting-room
    /// table, four corner cameras at 2.5 m, 610 frames over 40 s, with a
    /// gaze script whose counts reproduce the Fig. 9 summary matrix and
    /// whose pinned windows reproduce the Fig. 7 (t = 10 s) and Fig. 8
    /// (t = 15 s) configurations.
    pub fn prototype() -> Scenario {
        let spec = VideoSpec::paper_prototype(); // 640×480, 610 frames / 40 s
        let frames = 610usize;
        let fps = spec.fps;

        // Participant indices: P1=0 (yellow), P2=1 (blue), P3=2 (green),
        // P4=3 (black) — the paper's color coding.
        let p1 = 0usize;
        let p2 = 1usize;
        let p3 = 2usize;
        let p4 = 3usize;

        // Fig. 7 (t = 10 s): green↔yellow, black→blue, blue→green.
        let fig7 = vec![
            GazeTarget::Person(p3), // P1 (yellow) → green
            GazeTarget::Person(p3), // P2 (blue) → green
            GazeTarget::Person(p1), // P3 (green) → yellow
            GazeTarget::Person(p2), // P4 (black) → blue
        ];
        // Fig. 8 (t = 15 s): green, blue, black → yellow.
        let fig8 = vec![
            GazeTarget::Person(p3), // P1 keeps attending to green
            GazeTarget::Person(p1),
            GazeTarget::Person(p1),
            GazeTarget::Person(p1),
        ];
        let window = |t: f64| {
            let c = (t * fps).round() as usize;
            (c.saturating_sub(8), (c + 8).min(frames))
        };
        let (a0, a1) = window(10.0);
        let (b0, b1) = window(15.0);

        // Fig. 9 target counts. (P1→P3) = 357 is the value printed in
        // the paper; the rest are chosen so that P1's received-looks
        // column dominates (the paper's "P1 is the dominant participant").
        let schedule = ScheduleBuilder::new(4, frames)
            .require(p1, p2, 93)
            .require(p1, p3, 357)
            .require(p1, p4, 68)
            .require(p2, p1, 210)
            .require(p2, p3, 120)
            .require(p2, p4, 140)
            .require(p3, p1, 285)
            .require(p3, p2, 95)
            .require(p3, p4, 60)
            .require(p4, p1, 180)
            .require(p4, p2, 110)
            .require(p4, p3, 85)
            .pin(a0, a1, fig7)
            .pin(b0, b1, fig8)
            .build();

        let table = DiningTable::meeting_room(Vec2::new(3.0, 2.0));
        let seats = table.seats(4, 1.25, 0.25);
        let participants = seats
            .iter()
            .enumerate()
            .map(|(i, s)| Participant {
                index: i,
                name: format!("P{}", i + 1),
                color: Participant::prototype_color(i),
                tone: contract::skin_tone(i),
                seat_head: s.head,
                seat_facing: s.facing,
            })
            .collect();

        let rig = CameraRig::four_corner_prototype(
            6.0,
            4.0,
            2.5,
            Vec3::new(3.0, 2.0, 1.0),
            CameraIntrinsics::from_hfov(spec.width, spec.height, 50.0),
        );

        Scenario {
            name: "prototype".into(),
            table,
            participants,
            rig,
            schedule,
            emotion_config: EmotionDynamicsConfig::default(),
            spec,
            seed: 2018,
            sway_amplitude: 0.012,
            head_turn_rate: 0.45,
        }
    }

    /// A smaller two-camera dinner (the Fig. 2 acquisition platform):
    /// two participants facing each other across the table, cameras
    /// behind each of them per the Fig. 6 eye-contact geometry.
    pub fn two_camera_dinner(frames: usize, seed: u64) -> Scenario {
        let spec = VideoSpec::paper_acquisition();
        let table = DiningTable::meeting_room(Vec2::new(3.0, 0.0));
        let seats = table.seats(4, 1.25, 0.25);
        // Use the two facing seats (P1 on −Y and P3 on +Y are across the
        // width; but for the two-camera rig along X we take the −X/+X
        // facing pair — seats 1 and 3).
        let pair = [seats[1], seats[3]];
        let participants: Vec<Participant> = pair
            .iter()
            .enumerate()
            .map(|(i, s)| Participant {
                index: i,
                name: format!("P{}", i + 1),
                color: Participant::prototype_color(i),
                tone: contract::skin_tone(i),
                seat_head: s.head,
                seat_facing: s.facing,
            })
            .collect();

        // Alternate mutual gaze and plate attention in thirds.
        let mut builder = ScheduleBuilder::new(2, frames)
            .require(0, 1, (frames * 2 / 3) as u32)
            .require(1, 0, (frames / 2) as u32);
        builder.dwell = 30;
        let schedule = builder.build();

        let rig = CameraRig::paper_two_camera(6.0, 2.5, CameraIntrinsics::paper_camera());

        Scenario {
            name: "two-camera-dinner".into(),
            table,
            participants,
            rig,
            schedule,
            emotion_config: EmotionDynamicsConfig::default(),
            spec,
            seed,
            sway_amplitude: 0.010,
            head_turn_rate: 0.45,
        }
    }

    /// A restaurant-style dinner: `n` participants (2..=8) around the
    /// table, four corner cameras, conversation-driven gaze (see
    /// [`crate::conversation`]) and livelier emotion dynamics — the
    /// smart-restaurant setting of the paper's introduction.
    ///
    /// # Panics
    /// Panics when `n` is outside `2..=8`.
    pub fn restaurant_dinner(n: usize, frames: usize, seed: u64) -> Scenario {
        assert!(
            (2..=8).contains(&n),
            "restaurant scenario supports 2..=8 guests"
        );
        let spec = VideoSpec::paper_acquisition();
        let table = DiningTable::meeting_room(Vec2::new(3.0, 2.0));
        let seats = table.seats(n, 1.25, 0.25);
        let participants = seats
            .iter()
            .enumerate()
            .map(|(i, s)| Participant {
                index: i,
                name: format!("P{}", i + 1),
                color: Participant::prototype_color(i),
                tone: contract::skin_tone(i),
                seat_head: s.head,
                seat_facing: s.facing,
            })
            .collect();
        let (schedule, _speakers) = crate::conversation::generate_conversation(
            n,
            frames,
            &crate::conversation::ConversationConfig::default(),
            seed,
        );
        let rig = CameraRig::four_corner_prototype(
            6.0,
            4.0,
            2.5,
            Vec3::new(3.0, 2.0, 1.0),
            CameraIntrinsics::from_hfov(spec.width, spec.height, 50.0),
        );
        Scenario {
            name: format!("restaurant-dinner-{n}"),
            table,
            participants,
            rig,
            schedule,
            emotion_config: EmotionDynamicsConfig {
                stay_probability: 0.95,
                happy_weight: 6.0,
                neutral_weight: 3.0,
                other_weight: 0.5,
            },
            spec,
            seed,
            sway_amplitude: 0.012,
            head_turn_rate: 0.45,
        }
    }

    /// Number of frames in the script.
    pub fn frames(&self) -> usize {
        self.schedule.frames()
    }

    /// Deterministic head sway offset for participant `i` at `frame`.
    fn sway(&self, i: usize, frame: usize) -> Vec3 {
        let t = frame as f64 / self.spec.fps;
        let phase = i as f64 * 1.7 + self.seed as f64 * 0.001;
        let a = self.sway_amplitude;
        Vec3::new(
            a * (0.43 * t * std::f64::consts::TAU * 0.18 + phase).sin(),
            a * (0.31 * t * std::f64::consts::TAU * 0.23 + phase * 2.0).cos(),
            a * 0.4 * (0.5 * t + phase).sin(),
        )
    }

    /// Runs the full simulation, producing per-frame ground truth.
    pub fn simulate(&self) -> GroundTruth {
        let n = self.participants.len();
        let frames = self.frames();
        let mut emotions = EmotionDynamics::new(n, self.emotion_config, self.seed);
        // Forward-direction state for smoothing.
        let mut forwards: Vec<Vec3> = self.participants.iter().map(|p| p.seat_facing).collect();

        let mut snapshots = Vec::with_capacity(frames);
        for f in 0..frames {
            let emos = emotions.step().to_vec();
            // Head positions first (targets reference them).
            let heads: Vec<Vec3> = (0..n)
                .map(|i| self.participants[i].seat_head + self.sway(i, f))
                .collect();

            let mut states = Vec::with_capacity(n);
            for i in 0..n {
                let (target_point, intended) = match self.schedule.target(i, f) {
                    GazeTarget::Person(j) => (heads[j], Some(j)),
                    GazeTarget::Plate => {
                        let seat = crate::table::Seat {
                            head: self.participants[i].seat_head,
                            facing: self.participants[i].seat_facing,
                        };
                        (self.table.plate_in_front_of(&seat), None)
                    }
                };
                let gaze = (target_point - heads[i])
                    .try_normalized()
                    .unwrap_or(self.participants[i].seat_facing);
                // Head turns toward the gaze with a first-order lag.
                let blended = forwards[i].lerp(gaze, self.head_turn_rate);
                forwards[i] = blended.try_normalized().unwrap_or(gaze);
                states.push(ParticipantState {
                    head: heads[i],
                    forward: forwards[i],
                    gaze,
                    emotion: emos[i],
                    intended_target: intended,
                });
            }
            snapshots.push(SceneSnapshot {
                frame: f,
                time: f as f64 / self.spec.fps,
                states,
            });
        }
        GroundTruth { snapshots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Attention radius used by ground-truth checks (see DESIGN.md §5).
    const R: f64 = 0.30;

    #[test]
    fn prototype_shape_matches_paper() {
        let s = Scenario::prototype();
        assert_eq!(s.participants.len(), 4);
        assert_eq!(s.rig.len(), 4);
        assert_eq!(s.frames(), 610);
        assert!(
            (s.frames() as f64 / s.spec.fps - 40.0).abs() < 1e-9,
            "40-second video"
        );
    }

    #[test]
    fn prototype_scripted_summary_matches_fig9_counts() {
        let s = Scenario::prototype();
        let m = s.schedule.summary_matrix();
        assert_eq!(m[0][2], 357, "(P1→P3) is the paper's printed value");
        for i in 0..4 {
            assert_eq!(m[i][i], 0, "diagonal must be zero");
        }
        // Column sums: P1 dominant.
        let col = |j: usize| (0..4).map(|i| m[i][j]).sum::<u32>();
        let c1 = col(0);
        for j in 1..4 {
            assert!(
                c1 > col(j),
                "P1 column {c1} must dominate column {j} = {}",
                col(j)
            );
        }
    }

    #[test]
    fn fig7_configuration_at_t10() {
        let s = Scenario::prototype();
        let f = (10.0 * s.spec.fps).round() as usize;
        assert_eq!(s.schedule.target(0, f), GazeTarget::Person(2)); // yellow→green
        assert_eq!(s.schedule.target(2, f), GazeTarget::Person(0)); // green→yellow
        assert_eq!(s.schedule.target(3, f), GazeTarget::Person(1)); // black→blue
        assert_eq!(s.schedule.target(1, f), GazeTarget::Person(2)); // blue→green
    }

    #[test]
    fn fig8_configuration_at_t15() {
        let s = Scenario::prototype();
        let f = (15.0 * s.spec.fps).round() as usize;
        for i in [1usize, 2, 3] {
            assert_eq!(
                s.schedule.target(i, f),
                GazeTarget::Person(0),
                "P{} → yellow",
                i + 1
            );
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = Scenario::prototype();
        let a = s.simulate();
        let b = s.simulate();
        assert_eq!(a, b);
    }

    #[test]
    fn geometric_lookat_agrees_with_script_at_t10() {
        let s = Scenario::prototype();
        let gt = s.simulate();
        let f = (10.0 * s.spec.fps).round() as usize;
        let m = gt.snapshots[f].lookat_matrix(R);
        // Fig. 7: green↔yellow mutual, black→blue, blue→green.
        assert_eq!(m[0][2], 1, "yellow → green");
        assert_eq!(m[2][0], 1, "green → yellow");
        assert_eq!(m[3][1], 1, "black → blue");
        assert_eq!(m[1][2], 1, "blue → green");
        let contacts = gt.snapshots[f].eye_contacts(R);
        assert!(
            contacts.contains(&(0, 2)),
            "EC(yellow, green): {contacts:?}"
        );
    }

    #[test]
    fn geometric_lookat_agrees_with_script_at_t15() {
        let s = Scenario::prototype();
        let gt = s.simulate();
        let f = (15.0 * s.spec.fps).round() as usize;
        let m = gt.snapshots[f].lookat_matrix(R);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[2][0], 1);
        assert_eq!(m[3][0], 1);
    }

    #[test]
    fn geometric_summary_close_to_scripted() {
        // Gaze rays point exactly at (swaying) head centres, so the
        // geometric matrix may only lose frames to occlusion by a nearer
        // head — it must stay close to the script.
        let s = Scenario::prototype();
        let gt = s.simulate();
        let geo = gt.summary_matrix(R);
        let script = s.schedule.summary_matrix();
        for i in 0..4 {
            for j in 0..4 {
                let d = (geo[i][j] as i64 - script[i][j] as i64).abs();
                assert!(
                    d <= script[i][j] as i64 / 10 + 6,
                    "({i},{j}): geometric {} vs scripted {}",
                    geo[i][j],
                    script[i][j]
                );
            }
        }
    }

    #[test]
    fn plate_gaze_looks_down_and_at_nobody() {
        let s = Scenario::prototype();
        let gt = s.simulate();
        for snap in gt.snapshots.iter().take(100) {
            for (i, st) in snap.states.iter().enumerate() {
                if st.intended_target.is_none() {
                    assert!(st.gaze.z < -0.3, "plate gaze points down");
                    let m = snap.lookat_matrix(R);
                    assert_eq!(m[i].iter().sum::<u8>(), 0, "plate gaze hits nobody");
                }
            }
        }
    }

    #[test]
    fn heads_stay_near_seats() {
        let s = Scenario::prototype();
        let gt = s.simulate();
        for snap in [&gt.snapshots[0], &gt.snapshots[300], &gt.snapshots[609]] {
            for (p, st) in s.participants.iter().zip(&snap.states) {
                assert!(st.head.distance(p.seat_head) < 0.05);
            }
        }
    }

    #[test]
    fn forward_converges_to_gaze_during_dwell() {
        let s = Scenario::prototype();
        let gt = s.simulate();
        // Find a frame deep inside a dwell block (target unchanged for
        // 10+ frames) and check forward ≈ gaze.
        let mut checked = 0;
        for f in 12..s.frames() {
            for i in 0..4 {
                let stable =
                    (f - 10..=f).all(|g| s.schedule.target(i, g) == s.schedule.target(i, f));
                if stable {
                    let st = &gt.snapshots[f].states[i];
                    assert!(
                        st.forward.angle_to(st.gaze) < 0.15,
                        "frame {f} P{} forward lags too much",
                        i + 1
                    );
                    checked += 1;
                }
            }
            if checked > 200 {
                break;
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn two_camera_dinner_simulates() {
        let s = Scenario::two_camera_dinner(200, 7);
        assert_eq!(s.participants.len(), 2);
        assert_eq!(s.rig.len(), 2);
        let gt = s.simulate();
        assert_eq!(gt.len(), 200);
        // Mutual EC occurs at some point.
        let any_ec = gt.snapshots.iter().any(|s| !s.eye_contacts(R).is_empty());
        assert!(any_ec, "the pair must make eye contact at least once");
    }

    #[test]
    fn nearest_hit_semantics_blocks_looking_through_heads() {
        use dievent_emotion::Emotion;
        // i looks at far head C, but near head B is exactly in between:
        // the matrix must credit B (nearest hit), not C.
        let mk = |head: Vec3, gaze: Vec3| ParticipantState {
            head,
            forward: gaze,
            gaze,
            emotion: Emotion::Neutral,
            intended_target: None,
        };
        let a = Vec3::new(0.0, 0.0, 1.2);
        let b = Vec3::new(1.0, 0.0, 1.2);
        let c = Vec3::new(2.0, 0.0, 1.2);
        let snap = SceneSnapshot {
            frame: 0,
            time: 0.0,
            states: vec![mk(a, Vec3::X), mk(b, -Vec3::X), mk(c, -Vec3::X)],
        };
        let m = snap.lookat_matrix(0.3);
        assert_eq!(m[0][1], 1, "nearest head wins");
        assert_eq!(m[0][2], 0, "cannot look through a head");
    }
}
