//! Synthetic dining-scene simulator for the DiEvent framework.
//!
//! The paper's substrate — real dining/meeting videos from a multi-
//! camera acquisition platform (§II-A, §III) — is unavailable, so this
//! crate builds its closest synthetic equivalent: a deterministic
//! simulation of participants seated around a table, with scripted gaze
//! behaviour, Markov emotion dynamics, and a software renderer that
//! rasterizes each calibrated camera's view into ordinary pixel frames.
//! Ground truth (who looks at whom, who feels what) is known for every
//! frame — which the paper itself lists as future work ("collect and
//! annotate a dataset").
//!
//! * [`table`] — dining-table geometry and seat placement;
//! * [`participant`] — participant descriptors and per-frame state;
//! * [`rig`] — camera rigs: the Fig. 2 two-camera platform and the §III
//!   four-corner prototype rig;
//! * [`gaze`] — gaze targets, dwell-block schedules, and the
//!   count-constrained schedule builder used to reproduce Fig. 9;
//! * [`emotion_dyn`] — Markov-chain emotion dynamics;
//! * [`face`] — face sprites: expression rendering shared by the scene
//!   renderer and the emotion-classifier training-set generator;
//! * [`scenario`] — scenario assembly, simulation, and ground truth
//!   (including [`scenario::Scenario::prototype`], the 4-participant /
//!   4-camera / 610-frame §III prototype);
//! * [`render`] — the software renderer producing `GrayFrame`s that the
//!   `dievent-vision` substrate consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canvas;
pub mod conversation;
pub mod emotion_dyn;
pub mod face;
pub mod gaze;
pub mod participant;
pub mod render;
pub mod rig;
pub mod scenario;
pub mod table;
pub mod topview;

pub use conversation::{generate_conversation, ConversationConfig};
pub use emotion_dyn::{EmotionDynamics, EmotionDynamicsConfig};
pub use face::render_face_patch;
pub use gaze::{GazeSchedule, GazeTarget, ScheduleBuilder};
pub use participant::{Participant, ParticipantState};
pub use render::{RenderConfig, Renderer};
pub use rig::CameraRig;
pub use scenario::{GroundTruth, Scenario, SceneSnapshot};
pub use table::DiningTable;
pub use topview::render_topview_map;
