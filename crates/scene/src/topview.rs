//! Color top-view (plan) maps — image renditions of the paper's
//! Figures 7b and 8b.
//!
//! The paper visualizes each frame's look-at matrix as a top-view map:
//! the room from above, participants as colored disks (yellow, blue,
//! green, black), and an arrow from each gazer toward their target.
//! [`render_topview_map`] draws exactly that into an [`RgbFrame`] that
//! [`dievent_video::save_ppm`] can write to disk.

use crate::scenario::Scenario;
use dievent_video::RgbFrame;

/// Background color of the map.
const BACKGROUND: [u8; 3] = [245, 245, 240];
/// Room wall color.
const WALL: [u8; 3] = [60, 60, 60];
/// Table-top color.
const TABLE: [u8; 3] = [205, 185, 150];

/// Renders a top-view map of one look-at configuration.
///
/// `lookat[g][t] = 1` means participant `g` looks at participant `t`
/// (the output of `LookAtMatrix` rows, or a snapshot's geometric
/// matrix). `width` fixes the image width; height follows the room's
/// aspect ratio.
///
/// # Panics
/// Panics when the matrix size differs from the participant count.
pub fn render_topview_map(scenario: &Scenario, lookat: &[Vec<u8>], width: u32) -> RgbFrame {
    let n = scenario.participants.len();
    assert_eq!(lookat.len(), n, "matrix size must match participants");

    // Room bounds: table ± margin covering the seats and cameras.
    let xs: Vec<f64> = scenario
        .rig
        .cameras
        .iter()
        .map(|c| c.position().x)
        .chain(scenario.participants.iter().map(|p| p.seat_head.x))
        .collect();
    let ys: Vec<f64> = scenario
        .rig
        .cameras
        .iter()
        .map(|c| c.position().y)
        .chain(scenario.participants.iter().map(|p| p.seat_head.y))
        .collect();
    let min_x = xs.iter().copied().fold(f64::INFINITY, f64::min) - 0.3;
    let max_x = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 0.3;
    let min_y = ys.iter().copied().fold(f64::INFINITY, f64::min) - 0.3;
    let max_y = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 0.3;

    let scale = width as f64 / (max_x - min_x).max(1e-6);
    let height = ((max_y - min_y) * scale).ceil().max(1.0) as u32;
    let mut img = RgbFrame::new(width, height, BACKGROUND);

    // World → pixel (y flipped: north up).
    let to_px = |x: f64, y: f64| -> (f64, f64) { ((x - min_x) * scale, (max_y - y) * scale) };

    // Walls.
    let (x0, y0) = to_px(min_x + 0.05, max_y - 0.05);
    let (x1, y1) = to_px(max_x - 0.05, min_y + 0.05);
    stroke(&mut img, x0, y0, x1, y0, 2.0, WALL);
    stroke(&mut img, x0, y1, x1, y1, 2.0, WALL);
    stroke(&mut img, x0, y0, x0, y1, 2.0, WALL);
    stroke(&mut img, x1, y0, x1, y1, 2.0, WALL);

    // Table.
    let corners = scenario.table.corners();
    let (tx0, ty0) = to_px(corners[0].x, corners[2].y);
    let (tx1, ty1) = to_px(corners[2].x, corners[0].y);
    fill_rect(&mut img, tx0, ty0, tx1, ty1, TABLE);

    // Cameras as small dark squares.
    for cam in &scenario.rig.cameras {
        let (cx, cy) = to_px(cam.position().x, cam.position().y);
        fill_rect(&mut img, cx - 3.0, cy - 3.0, cx + 3.0, cy + 3.0, WALL);
    }

    // Arrows first so disks sit on top.
    let head_r = 0.13 * scale;
    for (g, row) in lookat.iter().enumerate() {
        for (t, &v) in row.iter().enumerate() {
            if v == 0 || g == t {
                continue;
            }
            let pg = scenario.participants[g].seat_head;
            let pt = scenario.participants[t].seat_head;
            let (gx, gy) = to_px(pg.x, pg.y);
            let (tx, ty) = to_px(pt.x, pt.y);
            // Shorten both ends so the arrow starts/ends at disk rims.
            let len = ((tx - gx).powi(2) + (ty - gy).powi(2)).sqrt().max(1e-6);
            let ux = (tx - gx) / len;
            let uy = (ty - gy) / len;
            let sx = gx + ux * head_r;
            let sy = gy + uy * head_r;
            let ex = tx - ux * (head_r + 4.0);
            let ey = ty - uy * (head_r + 4.0);
            let color = scenario.participants[g].color.rgb();
            stroke(&mut img, sx, sy, ex, ey, 2.4, color);
            // Arrowhead: two short back-strokes.
            let (bx, by) = (-ux, -uy);
            for side in [-1.0, 1.0] {
                let wx = bx * 0.86 - side * by * 0.5;
                let wy = by * 0.86 + side * bx * 0.5;
                stroke(&mut img, ex, ey, ex + wx * 9.0, ey + wy * 9.0, 2.4, color);
            }
        }
    }

    // Participant disks with a dark outline.
    for p in &scenario.participants {
        let (px, py) = to_px(p.seat_head.x, p.seat_head.y);
        img.fill_disk(px, py, head_r + 1.5, WALL);
        img.fill_disk(px, py, head_r, p.color.rgb());
    }

    img
}

fn stroke(img: &mut RgbFrame, x0: f64, y0: f64, x1: f64, y1: f64, thickness: f64, rgb: [u8; 3]) {
    let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
    let steps = (len * 2.0).ceil().max(1.0) as usize;
    for s in 0..=steps {
        let t = s as f64 / steps as f64;
        img.fill_disk(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t, thickness / 2.0, rgb);
    }
}

fn fill_rect(img: &mut RgbFrame, x0: f64, y0: f64, x1: f64, y1: f64, rgb: [u8; 3]) {
    let (x0, x1) = (x0.min(x1), x0.max(x1));
    let (y0, y1) = (y0.min(y1), y0.max(y1));
    for y in y0.floor() as i64..=y1.ceil() as i64 {
        for x in x0.floor() as i64..=x1.ceil() as i64 {
            img.set(x, y, rgb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn count_color(img: &RgbFrame, rgb: [u8; 3]) -> usize {
        let mut n = 0;
        for y in 0..img.height() {
            for x in 0..img.width() {
                if img.get(x, y) == rgb {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn map_contains_all_participant_colors() {
        let s = Scenario::prototype();
        let zero = vec![vec![0u8; 4]; 4];
        let img = render_topview_map(&s, &zero, 320);
        assert!(img.width() == 320 && img.height() > 100);
        for p in &s.participants {
            assert!(
                count_color(&img, p.color.rgb()) > 50,
                "{} disk missing",
                p.name
            );
        }
        assert!(count_color(&img, TABLE) > 500, "table visible");
    }

    #[test]
    fn arrows_add_gazer_colored_pixels() {
        let s = Scenario::prototype();
        let zero = vec![vec![0u8; 4]; 4];
        let mut with_arrow = vec![vec![0u8; 4]; 4];
        with_arrow[0][2] = 1; // yellow → green
        let base = render_topview_map(&s, &zero, 320);
        let arrowed = render_topview_map(&s, &with_arrow, 320);
        let yellow = s.participants[0].color.rgb();
        assert!(
            count_color(&arrowed, yellow) > count_color(&base, yellow) + 30,
            "arrow must add yellow pixels"
        );
    }

    #[test]
    #[should_panic]
    fn wrong_matrix_size_panics() {
        let s = Scenario::prototype();
        let bad = vec![vec![0u8; 2]; 2];
        let _ = render_topview_map(&s, &bad, 200);
    }
}
