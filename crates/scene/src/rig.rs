//! Camera rigs — the acquisition platform geometries from the paper.
//!
//! Fig. 2 describes two surveillance cameras fixed in front of each
//! other at 2.5 m height with −15° pitch; the §III prototype instead
//! distributes four cameras on the corners of the room at 2.5 m,
//! synchronized. Both rigs are expressed as calibrated
//! [`PinholeCamera`]s in the world frame.

use dievent_geometry::{CameraIntrinsics, PinholeCamera, Vec3};
use serde::{Deserialize, Serialize};

/// A set of synchronized, calibrated cameras.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraRig {
    /// The cameras, in a stable order (C1, C2, …).
    pub cameras: Vec<PinholeCamera>,
    /// Human-readable rig description.
    pub description: String,
}

impl CameraRig {
    /// Number of cameras.
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// Returns `true` when the rig has no cameras.
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }

    /// The Fig. 2 acquisition platform: two cameras facing each other at
    /// `height` (paper: 2.5 m) with ≈−15° pitch, `separation` metres
    /// apart along world X, both aimed at the midpoint between them.
    ///
    /// The aim point is chosen so the optical axis pitches down by 15°:
    /// the cameras look at a point `separation/2` away and
    /// `tan(15°)·separation/2` below their own height.
    ///
    /// # Panics
    /// Panics when `separation` is zero or non-finite (the eye and aim
    /// point coincide and no view direction exists).
    pub fn paper_two_camera(
        separation: f64,
        height: f64,
        intrinsics: CameraIntrinsics,
    ) -> CameraRig {
        let drop = (15.0f64.to_radians()).tan() * separation / 2.0;
        let target_z = height - drop;
        let c1 = PinholeCamera::look_at(
            intrinsics,
            Vec3::new(0.0, 0.0, height),
            Vec3::new(separation / 2.0, 0.0, target_z),
        )
        // lint:allow(no_panic): eye≠aim whenever separation≠0 — documented `# Panics` precondition
        .expect("valid two-camera geometry");
        let c2 = PinholeCamera::look_at(
            intrinsics,
            Vec3::new(separation, 0.0, height),
            Vec3::new(separation / 2.0, 0.0, target_z),
        )
        // lint:allow(no_panic): same invariant as c1 — separation≠0 keeps eye and aim distinct
        .expect("valid two-camera geometry");
        CameraRig {
            cameras: vec![c1, c2],
            description: format!(
                "Fig. 2 platform: 2 cameras face-to-face, {separation} m apart at {height} m, −15° pitch"
            ),
        }
    }

    /// The §III prototype rig: four cameras on the corners of a
    /// `room_x × room_y` room at `height` (paper: 2.5 m), all aimed at
    /// `aim` (typically just above the table centre).
    ///
    /// # Panics
    /// Panics when `aim` coincides with a corner camera position (no
    /// view direction exists); corners sit at the room ceiling inset by
    /// 0.35 m, so any table-height aim point is valid.
    pub fn four_corner_prototype(
        room_x: f64,
        room_y: f64,
        height: f64,
        aim: Vec3,
        intrinsics: CameraIntrinsics,
    ) -> CameraRig {
        let inset = 0.35;
        let corners = [
            Vec3::new(inset, inset, height),
            Vec3::new(room_x - inset, inset, height),
            Vec3::new(room_x - inset, room_y - inset, height),
            Vec3::new(inset, room_y - inset, height),
        ];
        let cameras = corners
            .iter()
            .map(|&eye| {
                // lint:allow(no_panic): aim≠corner — documented `# Panics` precondition
                PinholeCamera::look_at(intrinsics, eye, aim).expect("valid corner geometry")
            })
            .collect();
        CameraRig {
            cameras,
            description: format!(
                "§III prototype rig: 4 corner cameras in a {room_x}×{room_y} m room at {height} m"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dievent_geometry::rad_to_deg;

    #[test]
    fn two_camera_rig_faces_inward_with_15_deg_pitch() {
        let rig = CameraRig::paper_two_camera(6.0, 2.5, CameraIntrinsics::paper_camera());
        assert_eq!(rig.len(), 2);
        let a1 = rig.cameras[0].optical_axis();
        let a2 = rig.cameras[1].optical_axis();
        // Opposite horizontal directions.
        assert!(a1.x > 0.0 && a2.x < 0.0);
        // Pitch: angle below horizontal ≈ 15°.
        for axis in [a1, a2] {
            let horiz = (axis.x * axis.x + axis.y * axis.y).sqrt();
            let pitch_deg = rad_to_deg((-axis.z).atan2(horiz));
            assert!((pitch_deg - 15.0).abs() < 0.5, "pitch = {pitch_deg}°");
        }
    }

    #[test]
    fn two_cameras_cover_the_shared_midpoint() {
        let rig = CameraRig::paper_two_camera(6.0, 2.5, CameraIntrinsics::paper_camera());
        // A head between the cameras is visible from both — the paper's
        // reason for the face-to-face arrangement ("capture the
        // corresponding parts of the scene").
        let head = Vec3::new(3.0, 0.0, 1.25);
        assert!(rig.cameras[0].sees(head));
        assert!(rig.cameras[1].sees(head));
    }

    #[test]
    fn four_corner_rig_sees_the_table_from_everywhere() {
        let aim = Vec3::new(3.0, 2.0, 1.0);
        let rig = CameraRig::four_corner_prototype(
            6.0,
            4.0,
            2.5,
            aim,
            CameraIntrinsics::from_hfov(640, 480, 50.0),
        );
        assert_eq!(rig.len(), 4);
        for (i, cam) in rig.cameras.iter().enumerate() {
            assert!(cam.sees(aim), "camera {i} must see the aim point");
            assert!((cam.position().z - 2.5).abs() < 1e-12);
        }
        // Cameras occupy distinct corners.
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(
                    rig.cameras[i]
                        .position()
                        .distance(rig.cameras[j].position())
                        > 3.0
                );
            }
        }
    }

    #[test]
    fn four_corner_rig_sees_all_prototype_heads() {
        let aim = Vec3::new(3.0, 2.0, 1.0);
        let rig = CameraRig::four_corner_prototype(
            6.0,
            4.0,
            2.5,
            aim,
            CameraIntrinsics::from_hfov(640, 480, 50.0),
        );
        let table = crate::table::DiningTable::meeting_room(dievent_geometry::Vec2::new(3.0, 2.0));
        let seats = table.seats(4, 1.25, 0.25);
        for cam in &rig.cameras {
            for seat in &seats {
                assert!(cam.sees(seat.head), "every camera frames every head");
            }
        }
    }
}
