//! Face sprites: expression geometry shared by the scene renderer and
//! the emotion-classifier training-set generator.
//!
//! Expressions are encoded in the mouth stroke (curvature, thickness,
//! shape) and eyebrows, which is exactly the texture the LBP descriptor
//! sees. Using the same drawing code for training patches and for the
//! in-scene faces keeps the classifier's train/test domains aligned,
//! the way a real system trains on the deployment camera's imagery.

use crate::canvas::Canvas;
use dievent_emotion::Emotion;
use dievent_video::GrayFrame;
use dievent_vision::contract;

/// Draws a mouth centred at `(cx, cy)` with half-width `half_w`,
/// shaped by `emotion`.
pub fn draw_mouth(c: &mut Canvas, cx: f64, cy: f64, half_w: f64, emotion: Emotion) {
    let lum = contract::MOUTH_LUMINANCE;
    let th = (half_w * 0.35).max(1.2);
    match emotion {
        Emotion::Neutral => {
            c.stroke(cx - half_w, cy, cx + half_w, cy, th, lum);
        }
        Emotion::Happy => {
            // Smile: ends raised.
            arc(c, cx, cy, half_w, -0.55, th, lum);
        }
        Emotion::Sad => {
            // Frown: ends lowered.
            arc(c, cx, cy, half_w, 0.55, th, lum);
        }
        Emotion::Angry => {
            // Tight straight mouth, thicker.
            c.stroke(cx - half_w, cy, cx + half_w, cy, th * 1.7, lum);
        }
        Emotion::Disgust => {
            // Asymmetric sneer: one side raised.
            c.stroke(
                cx - half_w,
                cy + half_w * 0.2,
                cx + half_w,
                cy - half_w * 0.35,
                th,
                lum,
            );
        }
        Emotion::Fear => {
            // Wide, flattened ellipse.
            ellipse(c, cx, cy, half_w * 0.9, half_w * 0.35, lum);
        }
        Emotion::Surprise => {
            // Open round mouth.
            c.disk(cx, cy, half_w * 0.55, lum);
        }
    }
}

/// Draws eyebrows for the expressions that use them (angry: slanted in,
/// fear/surprise: raised).
pub fn draw_brows(
    c: &mut Canvas,
    eye_x: f64,
    eye_y: f64,
    eye_r: f64,
    is_left: bool,
    emotion: Emotion,
) {
    let lum = contract::MOUTH_LUMINANCE;
    let th = (eye_r * 0.45).max(1.0);
    let y = eye_y - eye_r * 1.9;
    let dir = if is_left { 1.0 } else { -1.0 };
    match emotion {
        Emotion::Angry => {
            // Slanted down toward the nose: the nose side is +x for the
            // left eye, −x for the right eye.
            let slope = eye_r * 0.5 * dir;
            c.stroke(eye_x - eye_r, y - slope, eye_x + eye_r, y + slope, th, lum);
        }
        Emotion::Fear | Emotion::Surprise => {
            // Raised flat brows.
            c.stroke(
                eye_x - eye_r,
                y - eye_r * 0.5,
                eye_x + eye_r,
                y - eye_r * 0.5,
                th,
                lum,
            );
        }
        _ => {}
    }
}

/// Quadratic mouth arc: vertical deviation `curv·half_w` at the ends
/// relative to the centre (negative = smile).
fn arc(c: &mut Canvas, cx: f64, cy: f64, half_w: f64, curv: f64, th: f64, lum: u8) {
    let steps = (half_w * 2.0).ceil().max(6.0) as usize;
    let mut prev: Option<(f64, f64)> = None;
    for s in 0..=steps {
        let t = s as f64 / steps as f64 * 2.0 - 1.0; // −1..1
        let x = cx + t * half_w;
        let y = cy + curv * half_w * (t * t - 0.5);
        if let Some((px, py)) = prev {
            c.stroke(px, py, x, y, th, lum);
        }
        prev = Some((x, y));
    }
}

/// Filled axis-aligned ellipse.
fn ellipse(c: &mut Canvas, cx: f64, cy: f64, rx: f64, ry: f64, lum: u8) {
    let x0 = (cx - rx).floor() as i64;
    let x1 = (cx + rx).ceil() as i64;
    let y0 = (cy - ry).floor() as i64;
    let y1 = (cy + ry).ceil() as i64;
    for y in y0..=y1 {
        for x in x0..=x1 {
            let nx = (x as f64 - cx) / rx;
            let ny = (y as f64 - cy) / ry;
            if nx * nx + ny * ny <= 1.0 {
                c.set(x, y, lum);
            }
        }
    }
}

/// Draws per-identity freckle texture inside a face disk.
pub fn draw_freckles(c: &mut Canvas, cx: f64, cy: f64, r: f64, identity: usize, tone: u8) {
    let lum = tone.saturating_sub(22);
    for k in 0..7u64 {
        let h = k
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((identity as u64).wrapping_mul(0xbf58476d1ce4e5b9));
        let a = (h % 628) as f64 / 100.0;
        let rad = ((h >> 16) % 55 + 25) as f64 / 100.0 * r; // 0.25r..0.8r
        let x = cx + a.cos() * rad;
        let y = cy + a.sin() * rad * 0.5 + r * 0.25; // keep off the eye region
        c.disk(x, y, (r * 0.045).max(0.7), lum);
    }
}

/// Renders a frontal face patch for classifier training: the same
/// disk/eyes/mouth geometry the scene renderer produces for a face
/// looking straight into the camera, with deterministic per-`variant`
/// jitter and noise.
pub fn render_face_patch(
    emotion: Emotion,
    tone: u8,
    identity: usize,
    variant: u32,
    size: u32,
) -> GrayFrame {
    let size = size.max(16);
    let mut c = Canvas::new(size, size, 40);
    let s = size as f64;
    let r = s * 0.48;
    let jitter = |k: u32, range: f64| -> f64 {
        let h = (variant as u64)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((k as u64).wrapping_mul(0xbf58476d1ce4e5b9));
        (((h >> 24) % 1000) as f64 / 1000.0 - 0.5) * 2.0 * range
    };
    // Detector crops are centroid-aligned, so the face centre moves at
    // most half a pixel between samples.
    let cx = s / 2.0 + jitter(1, 0.5);
    let cy = s / 2.0 + jitter(2, 0.5);

    c.shaded_disk(cx, cy, r, tone, contract::SHADING);
    draw_freckles(&mut c, cx, cy, r, identity, tone);

    // Frontal-view landmark geometry per the vision contract.
    let norm = contract::eye_dir_norm();
    let eye_dx = contract::EYE_SIDE / norm * r;
    let eye_dy = -contract::EYE_UP / norm * r;
    let eye_r = r * contract::EYE_RADIUS_FRAC;
    for side in [-1.0, 1.0] {
        let ex = cx + side * eye_dx + jitter(3, 0.5);
        let ey = cy + eye_dy + jitter(4, 0.5);
        c.disk(ex, ey, eye_r, contract::EYE_LUMINANCE);
        c.disk(
            ex + jitter(5, eye_r * 0.2),
            ey + jitter(6, eye_r * 0.2),
            eye_r * contract::PUPIL_RADIUS_FRAC,
            contract::PUPIL_LUMINANCE,
        );
        draw_brows(&mut c, ex, ey, eye_r, side < 0.0, emotion);
    }

    let mouth_norm = (1.0 + contract::MOUTH_DOWN * contract::MOUTH_DOWN).sqrt();
    let mouth_dy = contract::MOUTH_DOWN / mouth_norm * r;
    draw_mouth(
        &mut c,
        cx + jitter(7, 0.6),
        cy + mouth_dy + jitter(8, 0.6),
        r * 0.42,
        emotion,
    );

    c.add_noise(3, variant as u64);
    c.into_frame()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dievent_emotion::{EmotionClassifier, LbpConfig, TrainingConfig};

    #[test]
    fn patch_has_expected_structure() {
        let p = render_face_patch(Emotion::Neutral, 220, 0, 0, 48);
        assert_eq!((p.width(), p.height()), (48, 48));
        // Bright face centre, dark corner background.
        assert!(p.get(24, 24) > 180 || p.get(24, 30) > 180);
        assert!(p.get(0, 0) < 60);
    }

    #[test]
    fn variants_differ_but_emotions_differ_more() {
        let a0 = render_face_patch(Emotion::Happy, 220, 0, 0, 48);
        let a1 = render_face_patch(Emotion::Happy, 220, 0, 1, 48);
        let b0 = render_face_patch(Emotion::Sad, 220, 0, 0, 48);
        let diff = |x: &GrayFrame, y: &GrayFrame| -> f64 {
            x.data()
                .iter()
                .zip(y.data())
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .sum::<f64>()
                / x.data().len() as f64
        };
        let within = diff(&a0, &a1);
        let across = diff(&a0, &b0);
        assert!(within > 0.0, "variants must differ");
        assert!(across > within, "emotion change must outweigh jitter");
    }

    #[test]
    fn every_emotion_renders_distinctly() {
        use dievent_emotion::Emotion::*;
        let patches: Vec<_> = [Neutral, Happy, Sad, Angry, Disgust, Fear, Surprise]
            .iter()
            .map(|&e| render_face_patch(e, 220, 0, 0, 48))
            .collect();
        for i in 0..patches.len() {
            for j in i + 1..patches.len() {
                assert_ne!(patches[i].data(), patches[j].data(), "{i} vs {j}");
            }
        }
    }

    #[test]
    fn classifier_trains_well_on_rendered_patches() {
        // The real training path used by the pipeline: scene sprites →
        // LBP → MLP. This is the accuracy the EXPERIMENTS.md reports.
        let mut data = Vec::new();
        for v in 0..20u32 {
            for e in dievent_emotion::Emotion::ALL {
                // Mix identities/tones so the classifier can't cheat on tone.
                let tone = dievent_vision::contract::skin_tone((v % 4) as usize);
                data.push((
                    render_face_patch(e, tone, (v % 4) as usize, v * 7 + e.index() as u32, 48),
                    e,
                ));
            }
        }
        let tc = TrainingConfig {
            epochs: 60,
            ..TrainingConfig::default()
        };
        let (_clf, report) = EmotionClassifier::train(&data, LbpConfig::default(), &[48], 42, &tc);
        assert!(
            report.test_accuracy > 0.8,
            "rendered-patch accuracy too low: {} ({:?})",
            report.test_accuracy,
            report.confusion
        );
    }

    #[test]
    fn freckles_depend_on_identity() {
        let mut a = Canvas::new(48, 48, 0);
        a.disk(24.0, 24.0, 20.0, 220);
        let mut b = a.clone();
        draw_freckles(&mut a, 24.0, 24.0, 20.0, 0, 220);
        draw_freckles(&mut b, 24.0, 24.0, 20.0, 1, 220);
        assert_ne!(a.into_frame().data(), b.into_frame().data());
    }
}
