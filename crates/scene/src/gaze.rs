//! Gaze targets and schedules.
//!
//! Who looks at whom, frame by frame, is the scenario's script. The
//! [`ScheduleBuilder`] produces a deterministic schedule that (a) hits
//! exact per-pair frame counts — which is how the Fig. 9 summary matrix
//! is reproduced — while (b) pinning arbitrary windows to fixed
//! configurations — which is how the Fig. 7 (t = 10 s) and Fig. 8
//! (t = 15 s) look-at maps are reproduced — and (c) grouping the rest
//! into contiguous dwell blocks, because real gaze dwells for a second
//! or two rather than flickering per frame.

// Schedule matrices are indexed by (participant, frame) pairs.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

/// Where a participant is looking during one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GazeTarget {
    /// Looking at participant `j` (head centre).
    Person(usize),
    /// Looking down at their own plate / the table.
    Plate,
}

/// A complete gaze script: `targets[participant][frame]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GazeSchedule {
    targets: Vec<Vec<GazeTarget>>,
}

impl GazeSchedule {
    /// Builds from per-participant per-frame targets.
    ///
    /// # Panics
    /// Panics when rows have unequal lengths or a target references a
    /// participant out of range / themselves.
    pub fn new(targets: Vec<Vec<GazeTarget>>) -> Self {
        let n = targets.len();
        let frames = targets.first().map_or(0, Vec::len);
        for (i, row) in targets.iter().enumerate() {
            assert_eq!(row.len(), frames, "row {i} length mismatch");
            for (f, t) in row.iter().enumerate() {
                if let GazeTarget::Person(j) = t {
                    assert!(*j < n, "frame {f}: target {j} out of range");
                    assert_ne!(
                        *j, i,
                        "frame {f}: participant {i} cannot look at themselves"
                    );
                }
            }
        }
        GazeSchedule { targets }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.targets.len()
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.targets.first().map_or(0, Vec::len)
    }

    /// The target of participant `i` at `frame`.
    ///
    /// # Panics
    /// Panics out of range.
    pub fn target(&self, participant: usize, frame: usize) -> GazeTarget {
        self.targets[participant][frame]
    }

    /// The `n×n` *intended* look-at matrix at `frame`: `m[i][j] = 1`
    /// when `i` is scripted to look at `j`.
    pub fn lookat_matrix(&self, frame: usize) -> Vec<Vec<u8>> {
        let n = self.participants();
        let mut m = vec![vec![0u8; n]; n];
        for i in 0..n {
            if let GazeTarget::Person(j) = self.target(i, frame) {
                m[i][j] = 1;
            }
        }
        m
    }

    /// Sum of the per-frame look-at matrices over all frames — the
    /// ground-truth version of the Fig. 9 summary matrix.
    pub fn summary_matrix(&self) -> Vec<Vec<u32>> {
        let n = self.participants();
        let mut m = vec![vec![0u32; n]; n];
        for f in 0..self.frames() {
            for i in 0..n {
                if let GazeTarget::Person(j) = self.target(i, f) {
                    m[i][j] += 1;
                }
            }
        }
        m
    }
}

/// Builds count-constrained schedules with pinned windows.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    participants: usize,
    frames: usize,
    /// Dwell-block length in frames for the unpinned filler.
    pub dwell: usize,
    /// `counts[i][j]` = how many frames participant `i` must look at `j`
    /// in total (including pinned frames). Remaining frames become
    /// [`GazeTarget::Plate`].
    counts: Vec<Vec<u32>>,
    /// Pinned windows: `(start, end, config)` with
    /// `config[i] = target of participant i` throughout `[start, end)`.
    pins: Vec<(usize, usize, Vec<GazeTarget>)>,
}

impl ScheduleBuilder {
    /// Creates a builder for `participants` over `frames` frames.
    pub fn new(participants: usize, frames: usize) -> Self {
        ScheduleBuilder {
            participants,
            frames,
            dwell: 23,
            counts: vec![vec![0; participants]; participants],
            pins: Vec::new(),
        }
    }

    /// Requires participant `i` to look at `j` for exactly `frames`
    /// frames in total.
    ///
    /// # Panics
    /// Panics for `i == j` or out-of-range indices.
    pub fn require(mut self, i: usize, j: usize, frames: u32) -> Self {
        assert!(i < self.participants && j < self.participants && i != j);
        self.counts[i][j] = frames;
        self
    }

    /// Pins frames `[start, end)` to a fixed configuration.
    ///
    /// # Panics
    /// Panics when the window is out of range, overlaps an existing pin,
    /// or `config.len() != participants`.
    pub fn pin(mut self, start: usize, end: usize, config: Vec<GazeTarget>) -> Self {
        assert!(start < end && end <= self.frames, "bad pin window");
        assert_eq!(config.len(), self.participants);
        for (s, e, _) in &self.pins {
            assert!(end <= *s || start >= *e, "pins overlap");
        }
        self.pins.push((start, end, config));
        self
    }

    /// Builds the schedule.
    ///
    /// # Panics
    /// Panics when the pinned frames demand more looks at some target
    /// than the required counts allow, or the counts exceed the frame
    /// budget.
    pub fn build(self) -> GazeSchedule {
        let n = self.participants;
        let frames = self.frames;
        let mut targets = vec![vec![GazeTarget::Plate; frames]; n];
        let mut remaining = self.counts.clone();
        let mut pinned = vec![false; frames];

        // 1. Apply pins, decrementing the remaining counts.
        for (start, end, config) in &self.pins {
            for f in *start..*end {
                pinned[f] = true;
                for i in 0..n {
                    targets[i][f] = config[i];
                    if let GazeTarget::Person(j) = config[i] {
                        assert!(
                            remaining[i][j] > 0,
                            "pinned window exhausts count for {i}→{j}"
                        );
                        remaining[i][j] -= 1;
                    }
                }
            }
        }

        // 2. Fill unpinned frames per participant in dwell blocks,
        //    always continuing with the target that has most remaining.
        for i in 0..n {
            let total_remaining: u32 = remaining[i].iter().sum();
            let unpinned = pinned.iter().filter(|&&p| !p).count() as u32;
            assert!(
                total_remaining <= unpinned,
                "participant {i}: {total_remaining} required looks exceed {unpinned} unpinned frames"
            );
            let mut f = 0usize;
            while f < frames {
                if pinned[f] {
                    f += 1;
                    continue;
                }
                // Pick target with the most remaining budget (stable tie-break).
                let pick = (0..n)
                    .filter(|&j| j != i && remaining[i][j] > 0)
                    .max_by_key(|&j| (remaining[i][j], n - j));
                let Some(j) = pick else { break };
                let mut placed = 0u32;
                while f < frames && placed < self.dwell as u32 && remaining[i][j] > 0 {
                    if !pinned[f] {
                        targets[i][f] = GazeTarget::Person(j);
                        remaining[i][j] -= 1;
                        placed += 1;
                    }
                    f += 1;
                }
                // Leave a plate-gaze gap between dwell blocks when budget
                // allows, so looks don't all clump at the start.
                let budget: u32 = remaining[i].iter().sum();
                if budget > 0 {
                    let frames_left = (f..frames).filter(|&k| !pinned[k]).count() as u32;
                    let slack = frames_left.saturating_sub(budget);
                    let gap = (slack / (budget / self.dwell as u32 + 1)).min(self.dwell as u32 / 2);
                    let mut skipped = 0;
                    while f < frames && skipped < gap {
                        if !pinned[f] {
                            skipped += 1;
                        }
                        f += 1;
                    }
                }
            }
            debug_assert_eq!(
                remaining[i].iter().sum::<u32>(),
                0,
                "participant {i} budget not exhausted"
            );
        }

        GazeSchedule::new(targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_validates_targets() {
        let s = GazeSchedule::new(vec![
            vec![GazeTarget::Person(1), GazeTarget::Plate],
            vec![GazeTarget::Person(0), GazeTarget::Person(0)],
        ]);
        assert_eq!(s.participants(), 2);
        assert_eq!(s.frames(), 2);
        assert_eq!(s.target(0, 0), GazeTarget::Person(1));
    }

    #[test]
    #[should_panic]
    fn self_look_rejected() {
        let _ = GazeSchedule::new(vec![vec![GazeTarget::Person(0)]]);
    }

    #[test]
    fn lookat_matrix_reflects_targets() {
        let s = GazeSchedule::new(vec![
            vec![GazeTarget::Person(1)],
            vec![GazeTarget::Person(0)],
            vec![GazeTarget::Plate],
        ]);
        let m = s.lookat_matrix(0);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[2], vec![0, 0, 0]);
        assert_eq!(m[0][0], 0, "diagonal is zero");
    }

    #[test]
    fn builder_hits_exact_counts() {
        let schedule = ScheduleBuilder::new(3, 100)
            .require(0, 1, 30)
            .require(0, 2, 20)
            .require(1, 0, 55)
            .require(2, 0, 10)
            .build();
        let m = schedule.summary_matrix();
        assert_eq!(m[0][1], 30);
        assert_eq!(m[0][2], 20);
        assert_eq!(m[1][0], 55);
        assert_eq!(m[2][0], 10);
        assert_eq!(m[1][2], 0);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn builder_respects_pins() {
        let pin_cfg = vec![
            GazeTarget::Person(2),
            GazeTarget::Person(0),
            GazeTarget::Person(0),
        ];
        let schedule = ScheduleBuilder::new(3, 200)
            .require(0, 2, 60)
            .require(1, 0, 40)
            .require(2, 0, 50)
            .pin(80, 96, pin_cfg.clone())
            .build();
        for f in 80..96 {
            assert_eq!(schedule.target(0, f), GazeTarget::Person(2));
            assert_eq!(schedule.target(1, f), GazeTarget::Person(0));
            assert_eq!(schedule.target(2, f), GazeTarget::Person(0));
        }
        // Counts still exact overall.
        let m = schedule.summary_matrix();
        assert_eq!(m[0][2], 60);
        assert_eq!(m[1][0], 40);
        assert_eq!(m[2][0], 50);
    }

    #[test]
    fn builder_produces_dwell_blocks() {
        let schedule = ScheduleBuilder::new(2, 200).require(0, 1, 100).build();
        // Count transitions in row 0: with dwell 23 and 100 frames split
        // into blocks, transitions must be far fewer than 100.
        let mut transitions = 0;
        for f in 1..200 {
            if schedule.target(0, f) != schedule.target(0, f - 1) {
                transitions += 1;
            }
        }
        assert!(transitions <= 12, "too many gaze flickers: {transitions}");
    }

    #[test]
    #[should_panic]
    fn overbudget_counts_panic() {
        let _ = ScheduleBuilder::new(2, 10).require(0, 1, 11).build();
    }

    #[test]
    #[should_panic]
    fn overlapping_pins_panic() {
        let cfg = vec![GazeTarget::Plate, GazeTarget::Plate];
        let _ = ScheduleBuilder::new(2, 100)
            .pin(10, 20, cfg.clone())
            .pin(15, 25, cfg);
    }

    #[test]
    fn pinned_counts_deducted_not_duplicated() {
        let schedule = ScheduleBuilder::new(2, 50)
            .require(0, 1, 10)
            .pin(0, 10, vec![GazeTarget::Person(1), GazeTarget::Plate])
            .build();
        let m = schedule.summary_matrix();
        assert_eq!(m[0][1], 10, "pin frames count toward the requirement");
        // All looks must be inside the pin (budget exactly consumed).
        for f in 10..50 {
            assert_eq!(schedule.target(0, f), GazeTarget::Plate);
        }
    }
}
