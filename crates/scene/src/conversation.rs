//! A generative conversation model for gaze schedules.
//!
//! The prototype scenario scripts exact counts to reproduce the paper's
//! figures; open-ended scenarios (the smart-restaurant setting of the
//! paper's introduction) instead need *plausible* group dynamics. This
//! model generates them: a speaker process (one participant holds the
//! floor for a few seconds, then hands over) drives attention —
//! listeners mostly watch the speaker, the speaker scans listeners,
//! everyone occasionally attends to their plate. These are the
//! regularities the gaze literature the paper cites (Argyle & Dean)
//! describes.

// Targets are indexed by (participant, frame) pairs throughout.
#![allow(clippy::needless_range_loop)]

use crate::gaze::{GazeSchedule, GazeTarget};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Conversation-model tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversationConfig {
    /// Mean speaking-turn length in frames.
    pub mean_turn_frames: f64,
    /// Probability a listener watches the current speaker (vs plate or
    /// another participant).
    pub listener_attention: f64,
    /// Probability the speaker looks at some listener (vs their plate).
    pub speaker_engagement: f64,
    /// Mean gaze-dwell length in frames (how long one target is held).
    pub mean_dwell_frames: f64,
    /// Optional pairwise affinity weights (`affinity[i][j]`, symmetric
    /// use recommended): when participant `i` picks a person to glance
    /// at outside the speaker-driven flow, candidates are weighted by
    /// this matrix. `None` means uniform. Argyle & Dean: pairs
    /// interested in each other make more eye contact — this is the
    /// knob the sociology-study example turns.
    pub affinity: Option<Vec<Vec<f64>>>,
}

impl Default for ConversationConfig {
    fn default() -> Self {
        ConversationConfig {
            mean_turn_frames: 90.0,
            listener_attention: 0.75,
            speaker_engagement: 0.65,
            mean_dwell_frames: 30.0,
            affinity: None,
        }
    }
}

impl ConversationConfig {
    fn affinity_weight(&self, i: usize, j: usize) -> f64 {
        self.affinity
            .as_ref()
            .and_then(|a| a.get(i).and_then(|row| row.get(j)))
            .copied()
            .unwrap_or(1.0)
            .max(0.0)
    }

    /// Weighted pick of a glance target for `me` among all others.
    fn pick_other(&self, me: usize, participants: usize, rng: &mut StdRng) -> usize {
        let weights: Vec<f64> = (0..participants)
            .map(|j| {
                if j == me {
                    0.0
                } else {
                    self.affinity_weight(me, j)
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // Degenerate affinities: fall back to uniform.
            let mut j = rng.random_range(0..participants - 1);
            if j >= me {
                j += 1;
            }
            return j;
        }
        let mut pick = rng.random::<f64>() * total;
        for (j, w) in weights.iter().enumerate() {
            pick -= w;
            if pick <= 0.0 {
                return j;
            }
        }
        participants - 1 - usize::from(me == participants - 1)
    }
}

/// Generates a gaze schedule (and the underlying speaker track) for
/// `participants` over `frames` frames.
///
/// Returns `(schedule, speaker_per_frame)`. Deterministic per seed.
///
/// # Panics
/// Panics when `participants < 2`.
pub fn generate_conversation(
    participants: usize,
    frames: usize,
    config: &ConversationConfig,
    seed: u64,
) -> (GazeSchedule, Vec<usize>) {
    assert!(
        participants >= 2,
        "a conversation needs at least two people"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Speaker track: geometric turn lengths, uniform handover.
    let mut speaker = Vec::with_capacity(frames);
    let mut current = rng.random_range(0..participants);
    let p_switch = 1.0 / config.mean_turn_frames.max(1.0);
    for _ in 0..frames {
        if rng.random::<f64>() < p_switch {
            // Hand over to someone else.
            let mut next = rng.random_range(0..participants - 1);
            if next >= current {
                next += 1;
            }
            current = next;
        }
        speaker.push(current);
    }

    // Gaze targets: per participant, re-sample a target at dwell
    // boundaries conditioned on the speaker at that moment.
    let p_redwell = 1.0 / config.mean_dwell_frames.max(1.0);
    let mut targets = vec![vec![GazeTarget::Plate; frames]; participants];
    for i in 0..participants {
        let mut t = sample_target(i, speaker[0], participants, config, &mut rng);
        for f in 0..frames {
            let speaker_changed = f > 0 && speaker[f] != speaker[f - 1];
            if speaker_changed || rng.random::<f64>() < p_redwell {
                t = sample_target(i, speaker[f], participants, config, &mut rng);
            }
            targets[i][f] = t;
        }
    }
    (GazeSchedule::new(targets), speaker)
}

fn sample_target(
    me: usize,
    speaker: usize,
    participants: usize,
    config: &ConversationConfig,
    rng: &mut StdRng,
) -> GazeTarget {
    if me == speaker {
        // The speaker scans listeners (affinity-weighted) or glances at
        // the plate.
        if rng.random::<f64>() < config.speaker_engagement {
            GazeTarget::Person(config.pick_other(me, participants, rng))
        } else {
            GazeTarget::Plate
        }
    } else if rng.random::<f64>() < config.listener_attention {
        GazeTarget::Person(speaker)
    } else if rng.random::<f64>() < 0.4 && participants > 2 {
        // Side glance, affinity-weighted.
        let j = config.pick_other(me, participants, rng);
        if j == speaker {
            GazeTarget::Plate
        } else {
            GazeTarget::Person(j)
        }
    } else {
        GazeTarget::Plate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = ConversationConfig::default();
        let (a, sa) = generate_conversation(4, 500, &cfg, 5);
        let (b, sb) = generate_conversation(4, 500, &cfg, 5);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = generate_conversation(4, 500, &cfg, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn speaker_turns_have_realistic_lengths() {
        let cfg = ConversationConfig {
            mean_turn_frames: 50.0,
            ..Default::default()
        };
        let (_, speaker) = generate_conversation(4, 5000, &cfg, 1);
        let turns: Vec<usize> = {
            let mut t = Vec::new();
            let mut len = 1;
            for w in speaker.windows(2) {
                if w[0] == w[1] {
                    len += 1;
                } else {
                    t.push(len);
                    len = 1;
                }
            }
            t.push(len);
            t
        };
        let mean = turns.iter().sum::<usize>() as f64 / turns.len() as f64;
        assert!((mean - 50.0).abs() < 15.0, "mean turn {mean}");
        assert!(turns.len() > 50, "speakers must actually alternate");
    }

    #[test]
    fn listeners_mostly_watch_the_speaker() {
        let cfg = ConversationConfig::default();
        let (schedule, speaker) = generate_conversation(4, 4000, &cfg, 3);
        let mut watching = 0usize;
        let mut listening_frames = 0usize;
        for f in 0..4000 {
            for i in 0..4 {
                if i == speaker[f] {
                    continue;
                }
                listening_frames += 1;
                if schedule.target(i, f) == GazeTarget::Person(speaker[f]) {
                    watching += 1;
                }
            }
        }
        let ratio = watching as f64 / listening_frames as f64;
        assert!(
            (0.55..0.9).contains(&ratio),
            "listener attention ratio {ratio} out of band"
        );
    }

    #[test]
    fn speaker_receives_the_most_looks() {
        // Over a long conversation the summary matrix's dominant column
        // should belong to whoever spoke most.
        let cfg = ConversationConfig::default();
        let (schedule, speaker) = generate_conversation(5, 6000, &cfg, 11);
        let m = schedule.summary_matrix();
        let received: Vec<u32> = (0..5).map(|p| (0..5).map(|g| m[g][p]).sum()).collect();
        let mut spoke = [0usize; 5];
        for &s in &speaker {
            spoke[s] += 1;
        }
        let most_watched = received
            .iter()
            .enumerate()
            .max_by_key(|(_, &r)| r)
            .map(|(i, _)| i)
            .unwrap();
        let most_spoke = spoke
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(most_watched, most_spoke);
    }

    #[test]
    fn no_self_looks_ever() {
        let (schedule, _) = generate_conversation(3, 1000, &ConversationConfig::default(), 9);
        for f in 0..1000 {
            for i in 0..3 {
                assert_ne!(schedule.target(i, f), GazeTarget::Person(i));
            }
        }
    }

    #[test]
    fn affinity_biases_glances() {
        // P0 strongly prefers P1 over P2/P3; with affinity the P0→P1
        // count must clearly dominate P0→P2 and P0→P3.
        let mut affinity = vec![vec![1.0; 4]; 4];
        affinity[0][1] = 25.0;
        let cfg = ConversationConfig {
            affinity: Some(affinity),
            ..Default::default()
        };
        let (schedule, _) = generate_conversation(4, 8000, &cfg, 7);
        let m = schedule.summary_matrix();
        // Speaker-following attention dilutes the effect (the speaker is
        // uniformly distributed), so compare skew against the uniform
        // baseline rather than expecting total dominance.
        let (base, _) = generate_conversation(4, 8000, &ConversationConfig::default(), 7);
        let b = base.summary_matrix();
        let skew = |row: &[u32]| row[1] as f64 / (row[2] + row[3]).max(1) as f64;
        assert!(
            skew(&m[0]) > 1.6 * skew(&b[0]),
            "affinity skew {:.2} must clearly exceed baseline {:.2} ({:?} vs {:?})",
            skew(&m[0]),
            skew(&b[0]),
            m[0],
            b[0]
        );
        assert!(m[0][1] > m[0][2] && m[0][1] > m[0][3], "{:?}", m[0]);
    }

    #[test]
    #[should_panic]
    fn solo_conversation_rejected() {
        let _ = generate_conversation(1, 10, &ConversationConfig::default(), 0);
    }
}
