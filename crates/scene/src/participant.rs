//! Participants and their per-frame state.

use dievent_emotion::Emotion;
use dievent_geometry::Vec3;
use serde::{Deserialize, Serialize};

/// A named color used to describe participants, mirroring the paper's
/// prototype ("the yellow participant (P1)…").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParticipantColor {
    /// Yellow (P1 in the paper's prototype).
    Yellow,
    /// Blue (P2).
    Blue,
    /// Green (P3).
    Green,
    /// Black (P4).
    Black,
    /// Other palette entries for larger scenarios.
    Other(u8),
}

impl ParticipantColor {
    /// RGB triple for color rendering / plotting.
    pub fn rgb(self) -> [u8; 3] {
        match self {
            ParticipantColor::Yellow => [230, 200, 60],
            ParticipantColor::Blue => [70, 110, 220],
            ParticipantColor::Green => [70, 190, 90],
            ParticipantColor::Black => [40, 40, 40],
            ParticipantColor::Other(k) => [120 + (k % 5) * 20, 90, 160],
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ParticipantColor::Yellow => "yellow",
            ParticipantColor::Blue => "blue",
            ParticipantColor::Green => "green",
            ParticipantColor::Black => "black",
            ParticipantColor::Other(_) => "other",
        }
    }
}

/// Static description of one participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Participant {
    /// Zero-based participant index (P1 = 0).
    pub index: usize,
    /// Display name (e.g. "P1").
    pub name: String,
    /// Color code, as in the paper's prototype figures.
    pub color: ParticipantColor,
    /// Base skin/appearance luminance used by the renderer and the
    /// recognition gallery (identity-coded, see
    /// `dievent_vision::contract::skin_tone`).
    pub tone: u8,
    /// Seat head position (rest position; the simulator adds sway).
    pub seat_head: Vec3,
    /// Body facing direction (horizontal unit vector).
    pub seat_facing: Vec3,
}

impl Participant {
    /// The paper-prototype color for participant `index`.
    pub fn prototype_color(index: usize) -> ParticipantColor {
        match index {
            0 => ParticipantColor::Yellow,
            1 => ParticipantColor::Blue,
            2 => ParticipantColor::Green,
            3 => ParticipantColor::Black,
            k => ParticipantColor::Other(k as u8),
        }
    }
}

/// Dynamic state of one participant at one frame (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParticipantState {
    /// Head centre in world coordinates.
    pub head: Vec3,
    /// Unit face-forward direction (world).
    pub forward: Vec3,
    /// Unit gaze direction (world).
    pub gaze: Vec3,
    /// Current emotion.
    pub emotion: Emotion,
    /// Scripted gaze target: `Some(j)` when intentionally looking at
    /// participant `j`, `None` when attending to the plate/table.
    pub intended_target: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_colors_match_paper() {
        assert_eq!(Participant::prototype_color(0), ParticipantColor::Yellow);
        assert_eq!(Participant::prototype_color(1), ParticipantColor::Blue);
        assert_eq!(Participant::prototype_color(2), ParticipantColor::Green);
        assert_eq!(Participant::prototype_color(3), ParticipantColor::Black);
        assert!(matches!(
            Participant::prototype_color(7),
            ParticipantColor::Other(_)
        ));
    }

    #[test]
    fn color_names_and_rgb() {
        assert_eq!(ParticipantColor::Yellow.name(), "yellow");
        let [r, g, b] = ParticipantColor::Green.rgb();
        assert!(g > r && g > b, "green is green");
    }
}
