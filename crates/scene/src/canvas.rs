//! A mutable raster canvas used by the renderer.
//!
//! `GrayFrame` is optimized for cheap sharing across pipeline stages;
//! rendering wants a plain mutable buffer. [`Canvas`] is that buffer,
//! frozen into a `GrayFrame` once drawing completes.

use dievent_video::GrayFrame;

/// A mutable grayscale raster.
#[derive(Debug, Clone)]
pub struct Canvas {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl Canvas {
    /// Creates a canvas filled with `fill`.
    pub fn new(width: u32, height: u32, fill: u8) -> Self {
        Canvas {
            width,
            height,
            data: vec![fill; (width * height) as usize],
        }
    }

    /// Canvas width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Canvas height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Sets one pixel, ignoring out-of-bounds writes.
    #[inline]
    pub fn set(&mut self, x: i64, y: i64, v: u8) {
        if x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height {
            self.data[y as usize * self.width as usize + x as usize] = v;
        }
    }

    /// Reads one pixel with clamping.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as usize;
        let cy = y.clamp(0, self.height as i64 - 1) as usize;
        self.data[cy * self.width as usize + cx]
    }

    /// Fills a flat disk.
    pub fn disk(&mut self, cx: f64, cy: f64, r: f64, v: u8) {
        if r <= 0.0 {
            return;
        }
        let (x0, x1, y0, y1) = self.disk_bounds(cx, cy, r);
        let r2 = r * r;
        for y in y0..=y1 {
            let dy = y as f64 - cy;
            for x in x0..=x1 {
                let dx = x as f64 - cx;
                if dx * dx + dy * dy <= r2 {
                    self.set(x, y, v);
                }
            }
        }
    }

    /// Fills a disk with radial shading:
    /// `lum(d) = tone · (1 − shading·(d/r)²)`.
    pub fn shaded_disk(&mut self, cx: f64, cy: f64, r: f64, tone: u8, shading: f64) {
        if r <= 0.0 {
            return;
        }
        let (x0, x1, y0, y1) = self.disk_bounds(cx, cy, r);
        let r2 = r * r;
        for y in y0..=y1 {
            let dy = y as f64 - cy;
            for x in x0..=x1 {
                let dx = x as f64 - cx;
                let d2 = dx * dx + dy * dy;
                if d2 <= r2 {
                    let lum = tone as f64 * (1.0 - shading * d2 / r2);
                    self.set(x, y, lum.round().clamp(0.0, 255.0) as u8);
                }
            }
        }
    }

    fn disk_bounds(&self, cx: f64, cy: f64, r: f64) -> (i64, i64, i64, i64) {
        (
            (cx - r).floor().max(0.0) as i64,
            (cx + r).ceil().min(self.width as f64 - 1.0) as i64,
            (cy - r).floor().max(0.0) as i64,
            (cy + r).ceil().min(self.height as f64 - 1.0) as i64,
        )
    }

    /// Fills a convex polygon given in order (either winding).
    pub fn convex_polygon(&mut self, pts: &[(f64, f64)], v: u8) {
        if pts.len() < 3 {
            return;
        }
        let min_y = pts
            .iter()
            .map(|p| p.1)
            .fold(f64::INFINITY, f64::min)
            .floor()
            .max(0.0) as i64;
        let max_y = pts
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max)
            .ceil()
            .min(self.height as f64 - 1.0) as i64;
        for y in min_y..=max_y {
            let fy = y as f64 + 0.5;
            // Gather edge crossings of the scanline.
            let mut xs: Vec<f64> = Vec::with_capacity(4);
            for i in 0..pts.len() {
                let (x1, y1) = pts[i];
                let (x2, y2) = pts[(i + 1) % pts.len()];
                if (y1 <= fy && fy < y2) || (y2 <= fy && fy < y1) {
                    xs.push(x1 + (fy - y1) / (y2 - y1) * (x2 - x1));
                }
            }
            xs.sort_by(f64::total_cmp);
            for pair in xs.chunks_exact(2) {
                let x0 = pair[0].ceil().max(0.0) as i64;
                let x1 = pair[1].floor().min(self.width as f64 - 1.0) as i64;
                for x in x0..=x1 {
                    self.set(x, y, v);
                }
            }
        }
    }

    /// Thick line segment (drawn as stamped disks).
    pub fn stroke(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, thickness: f64, v: u8) {
        let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
        let steps = (len * 2.0).ceil().max(1.0) as usize;
        for s in 0..=steps {
            let t = s as f64 / steps as f64;
            self.disk(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t, thickness / 2.0, v);
        }
    }

    /// Adds deterministic hash noise of amplitude ±`amp` keyed by `salt`
    /// (use the frame index so noise decorrelates across frames).
    pub fn add_noise(&mut self, amp: u8, salt: u64) {
        if amp == 0 {
            return;
        }
        let span = (2 * amp + 1) as u64;
        for (i, px) in self.data.iter_mut().enumerate() {
            let h = (i as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(salt.wrapping_mul(0xbf58476d1ce4e5b9));
            let h = (h ^ (h >> 31)).wrapping_mul(0x94d049bb133111eb);
            let n = (h >> 33) % span;
            let delta = n as i32 - amp as i32;
            *px = (*px as i32 + delta).clamp(0, 255) as u8;
        }
    }

    /// Applies a vertical luminance gradient: `top_delta` added at row 0
    /// fading to `-top_delta` at the bottom row.
    pub fn vertical_gradient(&mut self, top_delta: i32) {
        let h = self.height.max(1) as f64;
        let w = self.width as usize;
        for y in 0..self.height as usize {
            let t = y as f64 / (h - 1.0).max(1.0);
            let delta = (top_delta as f64 * (1.0 - 2.0 * t)).round() as i32;
            for x in 0..w {
                let px = &mut self.data[y * w + x];
                *px = (*px as i32 + delta).clamp(0, 255) as u8;
            }
        }
    }

    /// Freezes the canvas into an immutable frame.
    pub fn into_frame(self) -> GrayFrame {
        GrayFrame::from_data(self.width, self.height, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_and_bounds() {
        let mut c = Canvas::new(20, 20, 0);
        c.disk(10.0, 10.0, 4.0, 200);
        let f = c.into_frame();
        assert_eq!(f.get(10, 10), 200);
        assert_eq!(f.get(10, 13), 200);
        assert_eq!(f.get(10, 15), 0);
    }

    #[test]
    fn shaded_disk_darkens_toward_rim() {
        let mut c = Canvas::new(40, 40, 0);
        c.shaded_disk(20.0, 20.0, 15.0, 200, 0.3);
        let f = c.into_frame();
        let center = f.get(20, 20);
        let rim = f.get(20, 33);
        assert!(center >= 198);
        assert!(rim < center);
        // At d = 13, r = 15: lum = 200·(1 − 0.3·169/225) ≈ 155.
        assert!((rim as f64 - 155.0).abs() < 4.0, "rim = {rim}");
    }

    #[test]
    fn polygon_fills_square() {
        let mut c = Canvas::new(20, 20, 0);
        c.convex_polygon(&[(5.0, 5.0), (15.0, 5.0), (15.0, 15.0), (5.0, 15.0)], 99);
        let f = c.into_frame();
        assert_eq!(f.get(10, 10), 99);
        assert_eq!(f.get(2, 2), 0);
        assert_eq!(f.get(17, 10), 0);
    }

    #[test]
    fn polygon_handles_rotated_quad() {
        let mut c = Canvas::new(40, 40, 0);
        c.convex_polygon(&[(20.0, 5.0), (35.0, 20.0), (20.0, 35.0), (5.0, 20.0)], 99);
        let f = c.into_frame();
        assert_eq!(f.get(20, 20), 99);
        assert_eq!(f.get(6, 6), 0);
    }

    #[test]
    fn stroke_connects_endpoints() {
        let mut c = Canvas::new(30, 30, 0);
        c.stroke(5.0, 5.0, 25.0, 20.0, 3.0, 180);
        let f = c.into_frame();
        assert_eq!(f.get(5, 5), 180);
        assert_eq!(f.get(25, 20), 180);
        assert_eq!(f.get(15, 12), 180, "midpoint covered");
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let mut a = Canvas::new(32, 32, 128);
        a.add_noise(5, 7);
        let mut b = Canvas::new(32, 32, 128);
        b.add_noise(5, 7);
        let fa = a.into_frame();
        let fb = b.into_frame();
        assert_eq!(fa.data(), fb.data(), "same salt → same noise");
        assert!(fa.data().iter().all(|&v| (123..=133).contains(&v)));
        let mut c = Canvas::new(32, 32, 128);
        c.add_noise(5, 8);
        assert_ne!(fa.data(), c.into_frame().data(), "different salt differs");
    }

    #[test]
    fn gradient_brightens_top() {
        let mut c = Canvas::new(10, 21, 100);
        c.vertical_gradient(10);
        let f = c.into_frame();
        assert_eq!(f.get(5, 0), 110);
        assert_eq!(f.get(5, 10), 100);
        assert_eq!(f.get(5, 20), 90);
    }

    #[test]
    fn out_of_bounds_drawing_is_clipped() {
        let mut c = Canvas::new(10, 10, 0);
        c.disk(-5.0, -5.0, 20.0, 50);
        c.convex_polygon(
            &[(-10.0, -10.0), (30.0, -10.0), (30.0, 5.0), (-10.0, 5.0)],
            80,
        );
        let f = c.into_frame();
        assert_eq!(f.get(0, 4), 80);
        assert_eq!(f.get(0, 9), 50);
    }
}
