//! Dining-table geometry and seat placement.

use dievent_geometry::{Vec2, Vec3};
use serde::{Deserialize, Serialize};

/// A rectangular dining table, axis-aligned in the world frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiningTable {
    /// Centre of the table top in world coordinates (z = surface height).
    pub center: Vec3,
    /// Extent along world X (metres).
    pub length: f64,
    /// Extent along world Y (metres).
    pub width: f64,
}

/// A seat around the table: where a participant's head rests and which
/// way their body faces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Seat {
    /// Head position (world, metres).
    pub head: Vec3,
    /// Unit body-facing direction (horizontal, toward the table).
    pub facing: Vec3,
}

impl DiningTable {
    /// A typical meeting-room table: 1.8 × 1.0 m, surface at 0.75 m.
    pub fn meeting_room(center_xy: Vec2) -> Self {
        DiningTable {
            center: Vec3::new(center_xy.x, center_xy.y, 0.75),
            length: 1.8,
            width: 1.0,
        }
    }

    /// The four corners of the table top, counter-clockwise.
    pub fn corners(&self) -> [Vec3; 4] {
        let hx = self.length / 2.0;
        let hy = self.width / 2.0;
        [
            self.center + Vec3::new(-hx, -hy, 0.0),
            self.center + Vec3::new(hx, -hy, 0.0),
            self.center + Vec3::new(hx, hy, 0.0),
            self.center + Vec3::new(-hx, hy, 0.0),
        ]
    }

    /// Places `n` seats around the table (one per side for `n ≤ 4`, then
    /// distributing the rest along the long sides), heads at
    /// `head_height` and `clearance` metres back from the table edge.
    ///
    /// For the canonical `n = 4` the ordering is: −Y side, −X side,
    /// +Y side, +X side — i.e. P1 and P3 face each other across the
    /// width, P2 and P4 across the length (the §III prototype layout).
    ///
    /// # Panics
    /// Panics when `n == 0` or `n > 8`.
    pub fn seats(&self, n: usize, head_height: f64, clearance: f64) -> Vec<Seat> {
        assert!(
            (1..=8).contains(&n),
            "supported table sizes: 1..=8 participants"
        );
        let hx = self.length / 2.0 + clearance;
        let hy = self.width / 2.0 + clearance;
        let z = head_height;
        // Canonical positions: mid-side seats first, then corners of the
        // long sides for n > 4.
        let all = [
            (Vec3::new(0.0, -hy, 0.0), Vec3::Y),
            (Vec3::new(-hx, 0.0, 0.0), Vec3::X),
            (Vec3::new(0.0, hy, 0.0), -Vec3::Y),
            (Vec3::new(hx, 0.0, 0.0), -Vec3::X),
            (Vec3::new(-self.length / 4.0, -hy, 0.0), Vec3::Y),
            (Vec3::new(self.length / 4.0, hy, 0.0), -Vec3::Y),
            (Vec3::new(self.length / 4.0, -hy, 0.0), Vec3::Y),
            (Vec3::new(-self.length / 4.0, hy, 0.0), -Vec3::Y),
        ];
        all[..n]
            .iter()
            .map(|(off, facing)| Seat {
                head: Vec3::new(self.center.x + off.x, self.center.y + off.y, z),
                facing: *facing,
            })
            .collect()
    }

    /// A point on the table in front of a seat — where a participant
    /// looks when attending to their plate.
    pub fn plate_in_front_of(&self, seat: &Seat) -> Vec3 {
        let p = seat.head + seat.facing * 0.45;
        Vec3::new(p.x, p.y, self.center.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DiningTable {
        DiningTable::meeting_room(Vec2::new(3.0, 2.0))
    }

    #[test]
    fn corners_are_on_the_surface() {
        let t = table();
        for c in t.corners() {
            assert!((c.z - 0.75).abs() < 1e-12);
        }
        let cs = t.corners();
        assert!((cs[0].distance(cs[1]) - 1.8).abs() < 1e-12);
        assert!((cs[1].distance(cs[2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn four_seats_face_each_other_pairwise() {
        let t = table();
        let seats = t.seats(4, 1.25, 0.25);
        assert_eq!(seats.len(), 4);
        // P1 (index 0) and P3 (index 2) face each other.
        assert!(seats[0].facing.approx_eq(-seats[2].facing, 1e-12));
        assert!(seats[1].facing.approx_eq(-seats[3].facing, 1e-12));
        // Heads at the requested height.
        assert!(seats.iter().all(|s| (s.head.z - 1.25).abs() < 1e-12));
        // Facing points toward the table centre.
        for s in &seats {
            let to_center = (t.center - s.head).xy();
            assert!(s.facing.xy().dot(to_center) > 0.0);
        }
    }

    #[test]
    fn seat_spacing_reasonable() {
        let t = table();
        let seats = t.seats(4, 1.25, 0.25);
        for i in 0..4 {
            for j in i + 1..4 {
                let d = seats[i].head.distance(seats[j].head);
                assert!(d > 0.9, "seats {i},{j} too close: {d}");
            }
        }
    }

    #[test]
    fn eight_seats_supported() {
        let t = table();
        let seats = t.seats(8, 1.2, 0.3);
        assert_eq!(seats.len(), 8);
        // All unique positions.
        for i in 0..8 {
            for j in i + 1..8 {
                assert!(seats[i].head.distance(seats[j].head) > 0.3);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_seats_panics() {
        let _ = table().seats(0, 1.2, 0.3);
    }

    #[test]
    fn plate_is_on_the_table_surface() {
        let t = table();
        let seats = t.seats(4, 1.25, 0.25);
        let plate = t.plate_in_front_of(&seats[0]);
        assert!((plate.z - 0.75).abs() < 1e-12);
        // In front of the seat, toward the table.
        assert!(plate.y > seats[0].head.y);
    }
}
