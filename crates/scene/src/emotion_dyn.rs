//! Markov-chain emotion dynamics.
//!
//! Emotions at a dinner table are mostly neutral with episodes of
//! happiness (and occasional negative reactions — the disgust signal
//! the paper's recipe-evaluation use case cares about). A first-order
//! Markov chain per participant captures that: high self-transition
//! probability gives realistic multi-second episodes; the stationary
//! mix is configurable per scenario.

use dievent_emotion::Emotion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Dynamics tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmotionDynamicsConfig {
    /// Probability of keeping the current emotion each frame.
    pub stay_probability: f64,
    /// Relative weight of entering `Happy` when switching.
    pub happy_weight: f64,
    /// Relative weight of entering `Neutral` when switching.
    pub neutral_weight: f64,
    /// Relative weight of each negative/basic emotion when switching.
    pub other_weight: f64,
}

impl Default for EmotionDynamicsConfig {
    fn default() -> Self {
        EmotionDynamicsConfig {
            stay_probability: 0.975,
            happy_weight: 3.0,
            neutral_weight: 5.0,
            other_weight: 0.4,
        }
    }
}

/// Per-participant emotion processes with a shared seed.
#[derive(Debug, Clone)]
pub struct EmotionDynamics {
    config: EmotionDynamicsConfig,
    states: Vec<Emotion>,
    rng: StdRng,
}

impl EmotionDynamics {
    /// Creates dynamics for `participants` people, all starting neutral.
    pub fn new(participants: usize, config: EmotionDynamicsConfig, seed: u64) -> Self {
        EmotionDynamics {
            config,
            states: vec![Emotion::Neutral; participants],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current emotion of participant `i`.
    pub fn emotion(&self, i: usize) -> Emotion {
        self.states[i]
    }

    /// All current emotions.
    pub fn emotions(&self) -> &[Emotion] {
        &self.states
    }

    /// Advances all participants by one frame and returns the states.
    pub fn step(&mut self) -> &[Emotion] {
        let cfg = self.config;
        for s in &mut self.states {
            if self.rng.random::<f64>() < cfg.stay_probability {
                continue;
            }
            // Weighted switch.
            let mut weights: Vec<(Emotion, f64)> = Emotion::ALL
                .iter()
                .map(|&e| {
                    let w = match e {
                        Emotion::Neutral => cfg.neutral_weight,
                        Emotion::Happy => cfg.happy_weight,
                        _ => cfg.other_weight,
                    };
                    (e, w)
                })
                .collect();
            // Never "switch" to the same emotion.
            weights.retain(|(e, _)| *e != *s);
            let total: f64 = weights.iter().map(|(_, w)| w).sum();
            let mut pick = self.rng.random::<f64>() * total;
            for (e, w) in weights {
                pick -= w;
                if pick <= 0.0 {
                    *s = e;
                    break;
                }
            }
        }
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_neutral() {
        let d = EmotionDynamics::new(4, EmotionDynamicsConfig::default(), 1);
        assert!(d.emotions().iter().all(|&e| e == Emotion::Neutral));
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut d = EmotionDynamics::new(3, EmotionDynamicsConfig::default(), seed);
            (0..500).map(|_| d.step().to_vec()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn emotions_form_episodes_not_flicker() {
        let mut d = EmotionDynamics::new(1, EmotionDynamicsConfig::default(), 42);
        let trace: Vec<Emotion> = (0..2000).map(|_| d.step()[0]).collect();
        let switches = trace.windows(2).filter(|w| w[0] != w[1]).count();
        // stay_probability 0.975 ⇒ ≈ 2.5% switch rate.
        assert!(switches < 120, "too many switches: {switches}");
        assert!(switches > 10, "dynamics must actually move: {switches}");
    }

    #[test]
    fn stationary_mix_prefers_neutral_and_happy() {
        let mut d = EmotionDynamics::new(1, EmotionDynamicsConfig::default(), 9);
        let mut counts = [0usize; Emotion::COUNT];
        for _ in 0..20_000 {
            counts[d.step()[0].index()] += 1;
        }
        let neutral = counts[Emotion::Neutral.index()];
        let happy = counts[Emotion::Happy.index()];
        let disgust = counts[Emotion::Disgust.index()];
        assert!(neutral > happy, "neutral dominates");
        assert!(happy > disgust * 2, "happy clearly above negatives");
    }

    #[test]
    fn all_basic_emotions_eventually_occur() {
        let mut d = EmotionDynamics::new(2, EmotionDynamicsConfig::default(), 3);
        let mut seen = [false; Emotion::COUNT];
        for _ in 0..60_000 {
            for &e in d.step() {
                seen[e.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "seen = {seen:?}");
    }
}
