//! The software renderer: rasterizes a scene snapshot through each
//! calibrated camera into ordinary grayscale frames.
//!
//! Rendering follows the appearance contract in
//! `dievent_vision::contract`: faces are shaded disks with dark
//! eye/pupil/mouth features positioned by projecting their true 3-D
//! locations on the head sphere, so every cue the vision substrate
//! decodes (apparent radius ↔ depth, eye-midpoint offset ↔ head
//! orientation, pupil offset ↔ gaze) is geometrically earned, not
//! painted on.

use crate::canvas::Canvas;
use crate::face;
use crate::scenario::{Scenario, SceneSnapshot};
use dievent_geometry::{PinholeCamera, Vec3};
use dievent_video::{GrayFrame, Timestamp};
use dievent_vision::contract;
use serde::{Deserialize, Serialize};

/// Renderer tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderConfig {
    /// Background luminance.
    pub background: u8,
    /// Vertical background gradient amplitude.
    pub gradient: i32,
    /// Table-top luminance.
    pub table_luminance: u8,
    /// Torso luminance.
    pub torso_luminance: u8,
    /// Sensor noise amplitude (± luminance).
    pub noise: u8,
    /// Whether to draw the table.
    pub draw_table: bool,
    /// Whether to draw torsos.
    pub draw_torsos: bool,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            background: 45,
            gradient: 8,
            table_luminance: 85,
            torso_luminance: 65,
            noise: 3,
            draw_table: true,
            draw_torsos: true,
        }
    }
}

/// Renders scene snapshots through cameras.
#[derive(Debug, Clone, Default)]
pub struct Renderer {
    /// Renderer configuration.
    pub config: RenderConfig,
}

impl Renderer {
    /// Creates a renderer.
    pub fn new(config: RenderConfig) -> Self {
        Renderer { config }
    }

    /// Renders one snapshot through camera `cam_idx` of the scenario's
    /// rig.
    ///
    /// # Panics
    /// Panics when `cam_idx` is out of range.
    pub fn render(&self, scenario: &Scenario, snap: &SceneSnapshot, cam_idx: usize) -> GrayFrame {
        let camera = &scenario.rig.cameras[cam_idx];
        let cfg = &self.config;
        let mut c = Canvas::new(scenario.spec.width, scenario.spec.height, cfg.background);
        c.vertical_gradient(cfg.gradient);

        if cfg.draw_table {
            self.draw_table(&mut c, scenario, camera);
        }

        // Painter's algorithm: far participants first.
        let mut order: Vec<usize> = (0..snap.states.len()).collect();
        order.sort_by(|&a, &b| {
            let da = snap.states[a].head.distance_sq(camera.position());
            let db = snap.states[b].head.distance_sq(camera.position());
            db.total_cmp(&da)
        });

        for &i in &order {
            self.draw_participant(&mut c, scenario, snap, i, camera);
        }

        c.add_noise(cfg.noise, snap.frame as u64 * 31 + cam_idx as u64);
        c.into_frame()
            .with_timestamp(Timestamp::from_secs(snap.time))
    }

    /// Renders every camera for one snapshot (C1..Cn order).
    pub fn render_all(&self, scenario: &Scenario, snap: &SceneSnapshot) -> Vec<GrayFrame> {
        (0..scenario.rig.len())
            .map(|k| self.render(scenario, snap, k))
            .collect()
    }

    fn draw_table(&self, c: &mut Canvas, scenario: &Scenario, camera: &PinholeCamera) {
        let corners = scenario.table.corners();
        let mut pts = Vec::with_capacity(4);
        for corner in corners {
            match camera.project(corner) {
                Some(p) => pts.push((p.pixel.x, p.pixel.y)),
                None => return, // table partially behind the camera: skip
            }
        }
        c.convex_polygon(&pts, self.config.table_luminance);
    }

    fn draw_participant(
        &self,
        c: &mut Canvas,
        scenario: &Scenario,
        snap: &SceneSnapshot,
        i: usize,
        camera: &PinholeCamera,
    ) {
        let st = &snap.states[i];
        let p = &scenario.participants[i];
        let to_cam = camera.extrinsics();

        // Torso: a blob under the head.
        if self.config.draw_torsos {
            let torso = st.head - Vec3::new(0.0, 0.0, 0.38);
            if let (Some(proj), Some(r_px)) =
                (camera.project(torso), camera.projected_radius(torso, 0.21))
            {
                c.shaded_disk(
                    proj.pixel.x,
                    proj.pixel.y,
                    r_px * 1.15,
                    self.config.torso_luminance,
                    0.2,
                );
            }
        }

        // Head disk.
        let Some(head_proj) = camera.project(st.head) else {
            return;
        };
        let Some(r_px) = camera.projected_radius(st.head, contract::HEAD_RADIUS_M) else {
            return;
        };
        if r_px < 1.0 {
            return;
        }
        c.shaded_disk(
            head_proj.pixel.x,
            head_proj.pixel.y,
            r_px,
            p.tone,
            contract::SHADING,
        );
        face::draw_freckles(c, head_proj.pixel.x, head_proj.pixel.y, r_px, i, p.tone);

        // Head-local frame: forward from state, right/up from world up.
        let fwd = st.forward;
        let Some(right) = fwd.cross(Vec3::Z).try_normalized() else {
            return; // facing straight up/down — no facial features visible
        };
        let up = right.cross(fwd);

        let fwd_cam = to_cam.transform_dir(fwd);
        let gaze_cam = to_cam.transform_dir(st.gaze);
        let (pox, poy) = contract::pupil_offset_frac(fwd_cam, gaze_cam);
        let eye_r_px = r_px * contract::EYE_RADIUS_FRAC;

        let (le_dir, re_dir) = contract::eye_directions(fwd, right, up);
        for dir in [le_dir, re_dir] {
            // Only features on the camera-facing hemisphere are visible,
            // and a feature on a sphere foreshortens with the cosine of
            // its angle to the view direction.
            let cos_view = -to_cam.transform_dir(dir).z;
            if cos_view <= 0.05 {
                continue;
            }
            let er = eye_r_px * cos_view;
            if er < 0.8 {
                continue; // sub-pixel speck
            }
            let eye_world = st.head + dir * contract::HEAD_RADIUS_M;
            let Some(ep) = camera.project(eye_world) else {
                continue;
            };
            c.disk(ep.pixel.x, ep.pixel.y, er, contract::EYE_LUMINANCE);
            c.disk(
                ep.pixel.x + pox * er,
                ep.pixel.y + poy * er,
                er * contract::PUPIL_RADIUS_FRAC,
                contract::PUPIL_LUMINANCE,
            );
            let is_left = dir == le_dir;
            face::draw_brows(c, ep.pixel.x, ep.pixel.y, er, is_left, st.emotion);
        }

        // Mouth.
        let m_dir = contract::mouth_direction(fwd, up);
        if to_cam.transform_dir(m_dir).z < 0.0 {
            if let Some(mp) = camera.project(st.head + m_dir * contract::HEAD_RADIUS_M) {
                face::draw_mouth(c, mp.pixel.x, mp.pixel.y, r_px * 0.42, st.emotion);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use dievent_vision::{detect_faces, DetectorConfig};

    fn small_prototype() -> (Scenario, crate::scenario::GroundTruth) {
        let s = Scenario::prototype();
        let gt = s.simulate();
        (s, gt)
    }

    #[test]
    fn frame_has_spec_dimensions_and_timestamp() {
        let (s, gt) = small_prototype();
        let r = Renderer::default();
        let f = r.render(&s, &gt.snapshots[0], 0);
        assert_eq!(f.width(), s.spec.width);
        assert_eq!(f.height(), s.spec.height);
        assert!((f.timestamp.as_secs() - 0.0).abs() < 1e-12);
        let f10 = r.render(&s, &gt.snapshots[152], 0);
        assert!((f10.timestamp.as_secs() - 152.0 / s.spec.fps).abs() < 1e-9);
    }

    #[test]
    fn rendered_faces_are_detectable() {
        let (s, gt) = small_prototype();
        let r = Renderer::default();
        // Across all four cameras, every camera should detect ≥2 faces
        // (occlusion can merge a pair on the diagonal views).
        let mut total = 0;
        for cam in 0..4 {
            let f = r.render(&s, &gt.snapshots[50], cam);
            let det = detect_faces(&f, &DetectorConfig::default());
            assert!(det.len() >= 2, "camera {cam}: {} faces", det.len());
            assert!(det.len() <= 4);
            total += det.len();
        }
        assert!(total >= 12, "total detections across cameras: {total}");
    }

    #[test]
    fn every_participant_detected_by_some_camera() {
        let (s, gt) = small_prototype();
        let r = Renderer::default();
        let snap = &gt.snapshots[100];
        let mut seen = [false; 4];
        for cam_idx in 0..4 {
            let f = r.render(&s, snap, cam_idx);
            let dets = detect_faces(&f, &DetectorConfig::default());
            let camera = &s.rig.cameras[cam_idx];
            for d in dets {
                // Match detection to nearest projected head.
                let mut best = (f64::INFINITY, 0usize);
                for (i, st) in snap.states.iter().enumerate() {
                    if let Some(p) = camera.project(st.head) {
                        let dist = (p.pixel.x - d.cx).hypot(p.pixel.y - d.cy);
                        if dist < best.0 {
                            best = (dist, i);
                        }
                    }
                }
                if best.0 < 10.0 {
                    seen[best.1] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "seen = {seen:?}");
    }

    #[test]
    fn tone_identifies_participants() {
        let (s, gt) = small_prototype();
        let r = Renderer::default();
        let f = r.render(&s, &gt.snapshots[20], 0);
        let dets = detect_faces(&f, &DetectorConfig::default());
        // Every detection's mean luminance must be near one of the four
        // configured tones (minus shading loss).
        for d in &dets {
            let closest = (0..4)
                .map(|i| (contract::skin_tone(i) as f64 - d.mean_luminance).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(closest < 20.0, "tone mismatch: {}", d.mean_luminance);
        }
    }

    #[test]
    fn noise_decorrelates_frames() {
        let (s, gt) = small_prototype();
        let r = Renderer::default();
        let a = r.render(&s, &gt.snapshots[0], 0);
        let b = r.render(&s, &gt.snapshots[1], 0);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn render_all_covers_rig() {
        let (s, gt) = small_prototype();
        let frames = Renderer::default().render_all(&s, &gt.snapshots[0]);
        assert_eq!(frames.len(), 4);
    }

    #[test]
    fn table_visible_as_brighter_region() {
        let (s, gt) = small_prototype();
        let with_table = Renderer::default().render(&s, &gt.snapshots[0], 0);
        let without = Renderer::new(RenderConfig {
            draw_table: false,
            ..RenderConfig::default()
        })
        .render(&s, &gt.snapshots[0], 0);
        assert!(with_table.mean() > without.mean());
    }
}
