//! Property-based tests for the scene simulator: the schedule builder's
//! count contract, conversation-model invariants, and simulation
//! determinism.

// Counts are indexed by (gazer, target) pairs throughout.
#![allow(clippy::needless_range_loop)]

use dievent_scene::{generate_conversation, ConversationConfig, GazeTarget, ScheduleBuilder};
use proptest::prelude::*;

proptest! {
    /// The builder hits its counts exactly for arbitrary feasible
    /// requirement sets.
    #[test]
    fn builder_counts_are_exact(
        n in 2usize..5,
        frames in 50usize..200,
        seed_counts in proptest::collection::vec(0u32..30, 16),
    ) {
        let mut builder = ScheduleBuilder::new(n, frames);
        let mut expected = vec![vec![0u32; n]; n];
        let mut idx = 0;
        for i in 0..n {
            let mut budget = frames as u32;
            for j in 0..n {
                if i == j { continue; }
                let c = seed_counts[idx % seed_counts.len()].min(budget / 2);
                idx += 1;
                budget -= c;
                expected[i][j] = c;
                builder = builder.require(i, j, c);
            }
        }
        let schedule = builder.build();
        let m = schedule.summary_matrix();
        prop_assert_eq!(m, expected);
        prop_assert_eq!(schedule.frames(), frames);
        prop_assert_eq!(schedule.participants(), n);
    }

    /// Pinned windows always hold their configuration verbatim.
    #[test]
    fn pins_hold_exactly(
        frames in 60usize..150,
        pin_start in 5usize..30,
        pin_len in 2usize..15,
    ) {
        let pin_end = (pin_start + pin_len).min(frames);
        let cfg = vec![GazeTarget::Person(1), GazeTarget::Person(0), GazeTarget::Plate];
        let schedule = ScheduleBuilder::new(3, frames)
            .require(0, 1, (pin_end - pin_start) as u32 + 10)
            .require(1, 0, (pin_end - pin_start) as u32 + 5)
            .pin(pin_start, pin_end, cfg.clone())
            .build();
        for f in pin_start..pin_end {
            for (i, expect) in cfg.iter().enumerate() {
                prop_assert_eq!(schedule.target(i, f), *expect, "frame {}", f);
            }
        }
    }

    /// Conversation schedules never contain self-looks or out-of-range
    /// targets (GazeSchedule::new would panic) and are deterministic.
    #[test]
    fn conversation_invariants(
        n in 2usize..7,
        frames in 10usize..300,
        seed in 0u64..1000,
    ) {
        let cfg = ConversationConfig::default();
        let (a, speakers) = generate_conversation(n, frames, &cfg, seed);
        let (b, _) = generate_conversation(n, frames, &cfg, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.frames(), frames);
        prop_assert_eq!(speakers.len(), frames);
        prop_assert!(speakers.iter().all(|&s| s < n));
    }

    /// Dwell structure: the number of gaze switches per participant is
    /// far below one per frame.
    #[test]
    fn conversation_has_dwell_structure(seed in 0u64..200) {
        let (schedule, _) = generate_conversation(4, 1000, &ConversationConfig::default(), seed);
        for i in 0..4 {
            let switches = (1..1000)
                .filter(|&f| schedule.target(i, f) != schedule.target(i, f - 1))
                .count();
            prop_assert!(switches < 300, "P{} flickers: {} switches", i + 1, switches);
        }
    }
}

mod simulation {
    use super::*;
    use dievent_scene::Scenario;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Ground truth is a pure function of the scenario.
        #[test]
        fn simulation_is_deterministic(frames in 5usize..40, seed in 0u64..50) {
            let s = Scenario::two_camera_dinner(frames, seed);
            prop_assert_eq!(s.simulate(), s.simulate());
        }

        /// All gaze and forward vectors stay unit length and heads stay
        /// near their seats throughout.
        #[test]
        fn simulated_state_is_well_formed(frames in 5usize..40, seed in 0u64..50) {
            let s = Scenario::restaurant_dinner(3, frames, seed);
            let gt = s.simulate();
            for snap in &gt.snapshots {
                for (st, p) in snap.states.iter().zip(&s.participants) {
                    prop_assert!((st.gaze.norm() - 1.0).abs() < 1e-6);
                    prop_assert!((st.forward.norm() - 1.0).abs() < 1e-6);
                    prop_assert!(st.head.distance(p.seat_head) < 0.06);
                }
            }
        }
    }
}
