//! A dependency-free work-stealing thread pool for frame-parallel
//! pipeline execution.
//!
//! The DiEvent pipeline historically parallelized only *across*
//! cameras: a 4-camera recording could never use more than 4 cores.
//! This crate provides the shared execution substrate that lets every
//! stage fan work *within* a camera (per-frame extraction chunks,
//! per-frame look-at fusion) without oversubscribing the machine: all
//! callers share one lazily-created [global pool](ThreadPool::global)
//! sized from [`std::thread::available_parallelism`].
//!
//! # Architecture
//!
//! One **injector** queue receives work submitted from outside the
//! pool; each worker additionally owns a **deque** it pushes nested
//! work onto (LIFO for cache locality). Idle workers first drain their
//! own deque, then the injector (FIFO), then **steal** the oldest task
//! from a sibling's deque — the classic work-stealing discipline,
//! implemented with mutex-guarded deques rather than a lock-free
//! Chase–Lev buffer so the crate stays free of `unsafe` memory
//! management (the only `unsafe` in this crate is the scoped-lifetime
//! erasure in [`Scope::spawn`], mirroring `std::thread::scope`).
//!
//! # Blocking and helping
//!
//! Every join point ([`ThreadPool::scope`], [`ThreadPool::parallel_map`],
//! [`ThreadPool::parallel_for`]) blocks until its tasks complete — and
//! while blocked, the waiting thread *helps*: it executes queued pool
//! tasks instead of sleeping. This has two consequences:
//!
//! * a nested `scope` from inside a pool worker cannot deadlock, even
//!   when every worker is blocked in a join — each blocked worker keeps
//!   executing pending tasks, including the nested ones;
//! * a pool with zero workers (spawn failure, exotic platforms) still
//!   makes progress: the joining thread simply runs everything itself.
//!
//! # Panic safety
//!
//! A panicking task never takes the pool down: panics are caught at the
//! task boundary, the join completes, and the join point reports
//! [`PoolError::WorkerPanicked`] (which `dievent-core` maps to
//! `DiEventError::PoolWorkerPanicked`). Results produced by sibling
//! tasks of a panicked batch are discarded rather than returned
//! partially.
//!
//! # Determinism
//!
//! [`ThreadPool::parallel_map`] and [`ThreadPool::parallel_chunk_map`]
//! place results by input position, so their output is bit-identical to
//! a sequential loop regardless of worker count, chunk boundaries, or
//! scheduling order. The pipeline's `pool_parallel ≡ sequential` digest
//! guarantee is built on this property.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Errors reported by pool join points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// At least one task in the joined batch panicked. `message`
    /// carries the first panic payload when it was a string.
    WorkerPanicked {
        /// Stringified panic payload, when recoverable.
        message: Option<String>,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { message: Some(m) } => {
                write!(f, "a pool task panicked: {m}")
            }
            PoolError::WorkerPanicked { message: None } => write!(f, "a pool task panicked"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Monotonic counters describing pool activity, read with
/// [`ThreadPool::stats`]. The pipeline publishes deltas of these into
/// its telemetry domain as `pool.tasks` / `pool.steals`, plus the
/// instantaneous [`ThreadPool::queue_depth`] as `pool.queue_depth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Tasks executed to completion (including panicked ones).
    pub tasks: u64,
    /// Tasks a worker took from a *sibling worker's* deque.
    pub steals: u64,
    /// Tasks submitted through the external injector queue.
    pub injected: u64,
    /// Cumulative nanoseconds tasks spent queued before any thread
    /// picked them up (the pool-level queue-wait component of frame
    /// lineage).
    pub queue_wait_ns: u64,
    /// Cumulative nanoseconds threads spent executing tasks.
    pub run_ns: u64,
}

/// A queued unit of work, stamped at submission so the pool can
/// attribute queue-wait separately from execution time.
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    queued_at: std::time::Instant,
}

/// One worker's own deque. The owner pushes and pops at the back
/// (LIFO); thieves and helpers take from the front (FIFO), so the
/// oldest — typically largest — subtree migrates first.
struct WorkerQueue {
    deque: Mutex<VecDeque<Job>>,
    /// Mirror of `deque.len()` so idle checks don't take every lock.
    len: AtomicUsize,
}

impl WorkerQueue {
    fn new() -> Self {
        WorkerQueue {
            deque: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }
}

struct Shared {
    /// Unique id distinguishing pools, so a worker of pool A that calls
    /// into pool B does not push onto an A-local deque index.
    pool_id: u64,
    injector: Mutex<VecDeque<Job>>,
    injector_len: AtomicUsize,
    workers: Vec<WorkerQueue>,
    /// Sleep support: workers wait here when no work is visible.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    shutdown: AtomicBool,
    tasks: AtomicU64,
    steals: AtomicU64,
    injected: AtomicU64,
    queue_wait_ns: AtomicU64,
    run_ns: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Queue contents are plain jobs and every critical section is
    // panic-free, so a poisoned lock is recoverable.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    /// Makes `job` visible to the pool. Workers push to their own deque
    /// (when they belong to this pool); everyone else injects.
    fn push(&self, job: Job) {
        match current_worker(self.pool_id) {
            Some(idx) => {
                let q = &self.workers[idx];
                lock(&q.deque).push_back(job);
                q.len.fetch_add(1, Ordering::SeqCst);
            }
            None => {
                lock(&self.injector).push_back(job);
                self.injector_len.fetch_add(1, Ordering::SeqCst);
                self.injected.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Wake sleepers *after* the job is visible; the lock/notify
        // pairing with the sleep path below prevents missed wakeups.
        let _g = lock(&self.idle_lock);
        self.idle_cv.notify_all();
    }

    fn pop_own(&self, idx: usize) -> Option<Job> {
        let q = &self.workers[idx];
        if q.len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let job = lock(&q.deque).pop_back();
        if job.is_some() {
            q.len.fetch_sub(1, Ordering::SeqCst);
        }
        job
    }

    fn pop_injector(&self) -> Option<Job> {
        if self.injector_len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let job = lock(&self.injector).pop_front();
        if job.is_some() {
            self.injector_len.fetch_sub(1, Ordering::SeqCst);
        }
        job
    }

    /// Steals the oldest task from a sibling deque. `not` is the
    /// stealing worker's own index (or `usize::MAX` for helpers).
    fn steal(&self, not: usize) -> Option<Job> {
        for (i, q) in self.workers.iter().enumerate() {
            if i == not || q.len.load(Ordering::SeqCst) == 0 {
                continue;
            }
            if let Some(job) = lock(&q.deque).pop_front() {
                q.len.fetch_sub(1, Ordering::SeqCst);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// One unit of progress from any queue, from the perspective of a
    /// thread with worker index `idx` (`usize::MAX` = external helper).
    fn find_job(&self, idx: usize) -> Option<Job> {
        if idx != usize::MAX {
            if let Some(job) = self.pop_own(idx) {
                return Some(job);
            }
        }
        self.pop_injector().or_else(|| self.steal(idx))
    }

    fn run_job(&self, job: Job) {
        let started = std::time::Instant::now();
        // Saturates to zero when clocks race; never panics.
        let waited = started.duration_since(job.queued_at);
        (job.run)();
        self.queue_wait_ns
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        self.run_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.tasks.fetch_add(1, Ordering::Relaxed);
    }

    fn queued(&self) -> usize {
        self.injector_len.load(Ordering::SeqCst)
            + self
                .workers
                .iter()
                .map(|q| q.len.load(Ordering::SeqCst))
                .sum::<usize>()
    }
}

/// How long a worker sleeps before re-checking the queues and the
/// shutdown flag (belt and braces under the condvar wakeup).
const WORKER_PARK: Duration = Duration::from_millis(50);
/// How long a join point sleeps between help attempts when no task is
/// runnable (its own batch may be executing on workers).
const JOIN_PARK: Duration = Duration::from_millis(1);

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    set_current_worker(Some((shared.pool_id, idx)));
    loop {
        if let Some(job) = shared.find_job(idx) {
            shared.run_job(job);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let guard = lock(&shared.idle_lock);
        // Re-check under the lock: a push after our scan but before
        // this lock acquisition is visible here; a push after it will
        // notify while we wait.
        if shared.queued() == 0 && !shared.shutdown.load(Ordering::SeqCst) {
            let _ = shared
                .idle_cv
                .wait_timeout(guard, WORKER_PARK)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    set_current_worker(None);
}

std::thread_local! {
    /// `(pool_id, worker_index)` for pool worker threads.
    static CURRENT_WORKER: std::cell::Cell<Option<(u64, usize)>> =
        const { std::cell::Cell::new(None) };
}

fn current_worker(pool_id: u64) -> Option<usize> {
    CURRENT_WORKER.with(|c| match c.get() {
        Some((id, idx)) if id == pool_id => Some(idx),
        _ => None,
    })
}

fn set_current_worker(v: Option<(u64, usize)>) {
    CURRENT_WORKER.with(|c| c.set(v));
}

/// Join-point bookkeeping for one batch of spawned tasks.
struct Batch {
    pending: AtomicUsize,
    panicked: AtomicBool,
    panic_message: Mutex<Option<String>>,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl Batch {
    fn new() -> Arc<Self> {
        Arc::new(Batch {
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_message: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        })
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        self.panicked.store(true, Ordering::SeqCst);
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned());
        if let Some(m) = message {
            lock(&self.panic_message).get_or_insert(m);
        }
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = lock(&self.done_lock);
            self.done_cv.notify_all();
        }
    }
}

/// Dropping the last user handle shuts the pool down (workers finish
/// queued tasks, then exit). The global pool's handle lives forever.
struct HandleGuard {
    shared: Arc<Shared>,
}

impl Drop for HandleGuard {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _g = lock(&self.shared.idle_lock);
        self.shared.idle_cv.notify_all();
    }
}

/// A handle to a work-stealing thread pool. Cheap to clone; the pool
/// shuts down when the last handle drops.
#[derive(Clone)]
pub struct ThreadPool {
    shared: Arc<Shared>,
    _guard: Arc<HandleGuard>,
}

static POOL_IDS: AtomicU64 = AtomicU64::new(0);
static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

impl ThreadPool {
    /// Builds a pool with `threads` workers (clamped to ≥ 1 requested;
    /// fewer may start if thread spawning fails — joins still make
    /// progress by helping).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            workers: (0..threads).map(|_| WorkerQueue::new()).collect(),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            run_ns: AtomicU64::new(0),
        });
        for idx in 0..threads {
            let shared = Arc::clone(&shared);
            // Spawn failure leaves a worker slot empty; helpers cover it.
            let _ = std::thread::Builder::new()
                .name(format!("dievent-pool-{idx}"))
                .spawn(move || worker_loop(shared, idx));
        }
        ThreadPool {
            _guard: Arc::new(HandleGuard {
                shared: Arc::clone(&shared),
            }),
            shared,
        }
    }

    /// The shared process-wide pool, created on first use and sized
    /// from [`std::thread::available_parallelism`] (override with the
    /// `DIEVENT_POOL_THREADS` environment variable). Every pipeline
    /// session and camera worker shares this pool — that is the
    /// no-oversubscription rule: N camera workers fanning frame chunks
    /// produce tasks for *one* set of `available_parallelism` workers,
    /// never `cameras × threads` threads.
    pub fn global() -> &'static ThreadPool {
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("DIEVENT_POOL_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
            ThreadPool::new(threads)
        })
    }

    /// Number of worker threads this pool was built with.
    pub fn threads(&self) -> usize {
        self.shared.workers.len()
    }

    /// Monotonic activity counters (see [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            injected: self.shared.injected.load(Ordering::Relaxed),
            queue_wait_ns: self.shared.queue_wait_ns.load(Ordering::Relaxed),
            run_ns: self.shared.run_ns.load(Ordering::Relaxed),
        }
    }

    /// Tasks currently queued (injector + all worker deques).
    pub fn queue_depth(&self) -> usize {
        self.shared.queued()
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowing tasks, then
    /// blocks (helping) until every spawned task finished.
    ///
    /// Returns [`PoolError::WorkerPanicked`] when any spawned task
    /// panicked; a panic in `f` itself resumes unwinding in the caller
    /// after all spawned tasks joined (exactly like
    /// [`std::thread::scope`]).
    pub fn scope<'env, T>(&self, f: impl FnOnce(&Scope<'env>) -> T) -> Result<T, PoolError> {
        let batch = Batch::new();
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            batch: Arc::clone(&batch),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join before looking at anything else — also on the panic
        // path, so spawned tasks never outlive borrowed data.
        self.wait_batch(&batch);
        match result {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(value) => {
                if batch.panicked.load(Ordering::SeqCst) {
                    Err(PoolError::WorkerPanicked {
                        message: lock(&batch.panic_message).take(),
                    })
                } else {
                    Ok(value)
                }
            }
        }
    }

    /// Maps `f` over `items` on the pool, returning results in input
    /// order. Chunking is internal; see
    /// [`parallel_chunk_map`](Self::parallel_chunk_map) to control it
    /// (e.g. to reuse per-chunk scratch buffers).
    pub fn parallel_map<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Result<Vec<R>, PoolError> {
        let chunk = default_chunk(items.len(), self.threads());
        self.parallel_chunk_map(items, chunk, |_, chunk| chunk.iter().map(&f).collect())
    }

    /// Splits `items` into contiguous chunks of at most `chunk_size`,
    /// maps each chunk on the pool with `f(offset, chunk)`, and
    /// returns the concatenated results in input order. `f` runs once
    /// per chunk, so per-chunk scratch state is allocated `⌈n/chunk⌉`
    /// times instead of `n` times.
    pub fn parallel_chunk_map<T: Sync, R: Send>(
        &self,
        items: &[T],
        chunk_size: usize,
        f: impl Fn(usize, &[T]) -> Vec<R> + Sync,
    ) -> Result<Vec<R>, PoolError> {
        let chunk_size = chunk_size.max(1);
        if items.len() <= chunk_size {
            // Too small to be worth a join point.
            return Ok(f(0, items));
        }
        let chunks: Vec<(usize, &[T])> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, c)| (i * chunk_size, c))
            .collect();
        let mut slots: Vec<Option<Vec<R>>> = (0..chunks.len()).map(|_| None).collect();
        let f = &f;
        self.scope(|s| {
            for (slot, (offset, chunk)) in slots.iter_mut().zip(chunks) {
                s.spawn(move || {
                    *slot = Some(f(offset, chunk));
                });
            }
        })?;
        let mut out = Vec::with_capacity(items.len());
        for slot in slots {
            match slot {
                Some(part) => out.extend(part),
                // Unreachable when scope returned Ok; stay panic-free.
                None => return Err(PoolError::WorkerPanicked { message: None }),
            }
        }
        Ok(out)
    }

    /// Runs `f(i)` for every `i` in `0..len` on the pool.
    pub fn parallel_for(&self, len: usize, f: impl Fn(usize) + Sync) -> Result<(), PoolError> {
        let indices: Vec<usize> = (0..len).collect();
        self.parallel_map(&indices, |&i| f(i)).map(|_| ())
    }

    /// Blocks until `batch` completes, executing queued pool tasks
    /// while waiting (the no-deadlock / zero-worker guarantee).
    fn wait_batch(&self, batch: &Batch) {
        let idx = current_worker(self.shared.pool_id).unwrap_or(usize::MAX);
        loop {
            if batch.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(job) = self.shared.find_job(idx) {
                self.shared.run_job(job);
                continue;
            }
            let guard = lock(&batch.done_lock);
            if batch.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            // Short park: our batch's remaining tasks are running on
            // workers (or queued in a deque we lost a race on).
            let _ = batch
                .done_cv
                .wait_timeout(guard, JOIN_PARK)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads())
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// Spawn surface handed to [`ThreadPool::scope`] closures. Tasks may
/// borrow anything that outlives the `scope` call (`'env`).
pub struct Scope<'env> {
    shared: Arc<Shared>,
    batch: Arc<Batch>,
    /// Invariance over `'env`, mirroring `std::thread::scope`: the
    /// borrow may not be shortened by variance.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns a task on the pool. The task may borrow `'env` data; the
    /// enclosing [`ThreadPool::scope`] call joins it before returning.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.batch.pending.fetch_add(1, Ordering::SeqCst);
        let batch = Arc::clone(&self.batch);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                batch.record_panic(payload);
            }
            batch.complete_one();
        });
        // SAFETY: the job borrows at most `'env` data. `Scope` is only
        // obtainable inside `ThreadPool::scope`, which blocks — on both
        // the success and unwind paths — until `batch.pending` reaches
        // zero, i.e. until this job's wrapper ran to completion and was
        // dropped. Therefore the job never outlives `'env`, and the
        // lifetime erasure to `'static` required by the type-erased
        // queue cannot be observed. This mirrors `std::thread::scope`.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        self.shared.push(Job {
            run,
            queued_at: std::time::Instant::now(),
        });
    }
}

/// Default chunk size: enough chunks for 4-way imbalance smoothing per
/// worker, never zero.
fn default_chunk(len: usize, threads: usize) -> usize {
    let target_chunks = threads.max(1) * 4;
    len.div_ceil(target_chunks).max(1)
}

/// Per-worker-thread storage: each thread that calls [`with`]
/// (`WorkerLocal::with`) gets its own lazily-created `T`, reused across
/// calls from that thread. Built for arena-style scratch buffers in
/// pool-fanned closures — each pool worker warms its own arena once and
/// then reuses it for every chunk it steals, with no cross-thread
/// contention during the closure body.
///
/// The value is *removed* from the map while the closure runs and
/// reinserted afterwards, so the (brief) map lock is never held during
/// user code. A re-entrant `with` on the same thread therefore sees a
/// fresh `T` — fine for scratch buffers, where correctness never
/// depends on which instance you get.
#[derive(Debug, Default)]
pub struct WorkerLocal<T> {
    slots: Mutex<std::collections::HashMap<std::thread::ThreadId, T>>,
}

impl<T: Default> WorkerLocal<T> {
    /// Creates an empty store; per-thread values are created on first
    /// use via `T::default()`.
    pub fn new() -> Self {
        WorkerLocal {
            slots: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Runs `f` with this thread's instance, creating it on first use.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let id = std::thread::current().id();
        let mut value = lock(&self.slots).remove(&id).unwrap_or_default();
        let out = f(&mut value);
        lock(&self.slots).insert(id, value);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parallel_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.parallel_map(&items, |&x| x * 2).expect("map");
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_matches_sequential_for_any_chunking() {
        let pool = ThreadPool::new(3);
        let items: Vec<u64> = (0..257).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        for chunk in [1, 2, 7, 64, 300] {
            let out = pool
                .parallel_chunk_map(&items, chunk, |_, c| {
                    c.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect()
                })
                .expect("map");
            assert_eq!(out, reference, "chunk size {chunk}");
        }
    }

    #[test]
    fn chunk_map_offsets_are_correct() {
        let pool = ThreadPool::new(2);
        let items: Vec<usize> = (0..100).collect();
        let out = pool
            .parallel_chunk_map(&items, 9, |offset, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        assert_eq!(offset + i, x, "offset must address the original slice");
                        x
                    })
                    .collect()
            })
            .expect("map");
        assert_eq!(out, items);
    }

    #[test]
    fn scope_tasks_borrow_stack_data() {
        let pool = ThreadPool::new(2);
        let data: Vec<u32> = (0..64).collect();
        let sums: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        pool.scope(|s| {
            for chunk in data.chunks(8) {
                let sums = &sums;
                s.spawn(move || {
                    let sum: u32 = chunk.iter().sum();
                    lock(sums).push(sum);
                });
            }
        })
        .expect("scope");
        let collected: u32 = lock(&sums).iter().sum();
        assert_eq!(collected, (0..64).sum::<u32>());
    }

    #[test]
    fn work_stealing_under_imbalance() {
        // One heavily skewed task plus many tiny ones: with more than
        // one worker the tiny tasks migrate off the loaded deque. The
        // batch must complete either way; on a multi-worker pool the
        // steal counter moves.
        let pool = ThreadPool::new(4);
        let done = AtomicU32::new(0);
        pool.scope(|s| {
            for i in 0..64 {
                let done = &done;
                s.spawn(move || {
                    // Nested spawn from pool workers lands on worker
                    // deques, creating stealable work.
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    let mut acc = 0u64;
                    for k in 0..5_000u64 {
                        acc = acc.wrapping_add(k * k);
                    }
                    assert!(acc > 0);
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("scope");
        assert_eq!(done.load(Ordering::SeqCst), 64);
        let stats = pool.stats();
        assert_eq!(stats.tasks, 64);
    }

    #[test]
    fn nested_spawns_generate_steals() {
        // Tasks that themselves spawn create deque-local work; sibling
        // workers must steal it for the inner batch to spread.
        let pool = ThreadPool::new(4);
        let done = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let done = &done;
                s.spawn(move || {
                    ThreadPool::global()
                        .parallel_for(32, |_| {
                            std::thread::sleep(Duration::from_micros(200));
                        })
                        .expect("inner");
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("outer");
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panic_in_task_is_reported_not_fatal() {
        let pool = ThreadPool::new(2);
        let err = pool
            .parallel_map(&[1u32, 2, 3, 4, 5, 6, 7, 8], |&x| {
                assert!(x != 5, "task five exploded");
                x
            })
            .expect_err("must report the panic");
        let PoolError::WorkerPanicked { message } = err;
        assert!(
            message.as_deref().is_some_and(|m| m.contains("exploded")),
            "payload should surface: {message:?}"
        );
        // The pool survives and keeps working.
        let ok = pool.parallel_map(&[1u32, 2, 3], |&x| x + 1).expect("map");
        assert_eq!(ok, vec![2, 3, 4]);
    }

    #[test]
    fn scope_body_panic_resumes_after_join() {
        let pool = ThreadPool::new(2);
        let ran = Arc::new(AtomicU32::new(0));
        let ran2 = Arc::clone(&ran);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _: Result<(), PoolError> = pool.scope(|s| {
                let ran = &ran2;
                for _ in 0..4 {
                    s.spawn(move || {
                        std::thread::sleep(Duration::from_millis(5));
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("scope body dies");
            });
        }));
        assert!(result.is_err(), "body panic must propagate");
        // All spawned tasks joined before the unwind escaped.
        assert_eq!(ran.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_scope_from_pool_worker_does_not_deadlock() {
        // Depth-3 nesting on a 1-worker pool: only the helping join
        // points can make progress. Completion proves no deadlock.
        let pool = ThreadPool::new(1);
        let total = AtomicU32::new(0);
        pool.scope(|outer| {
            for _ in 0..3 {
                let total = &total;
                let pool = &pool;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..3 {
                            let total = &total;
                            let pool = &pool;
                            inner.spawn(move || {
                                let n = pool
                                    .parallel_map(&[1u32, 2, 3], |&x| x)
                                    .expect("innermost")
                                    .len();
                                total.fetch_add(n as u32, Ordering::SeqCst);
                            });
                        }
                    })
                    .expect("inner scope");
                });
            }
        })
        .expect("outer scope");
        assert_eq!(total.load(Ordering::SeqCst), 27);
    }

    #[test]
    fn zero_len_and_tiny_inputs() {
        let pool = ThreadPool::new(2);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(pool.parallel_map(&empty, |&x| x).expect("empty"), empty);
        assert_eq!(pool.parallel_map(&[9u32], |&x| x).expect("one"), vec![9]);
        pool.parallel_for(0, |_| {}).expect("for0");
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = ThreadPool::global();
        let b = ThreadPool::global();
        assert_eq!(a.shared.pool_id, b.shared.pool_id);
        assert!(a.threads() >= 1);
    }

    #[test]
    fn stats_count_tasks_and_injection() {
        let pool = ThreadPool::new(2);
        let before = pool.stats();
        pool.parallel_for(100, |_| {}).expect("for");
        let after = pool.stats();
        assert!(after.tasks > before.tasks);
        assert!(after.injected > before.injected, "external submits inject");
    }

    #[test]
    fn stats_attribute_queue_wait_and_run_time() {
        let pool = ThreadPool::new(2);
        let before = pool.stats();
        pool.parallel_for(8, |_| std::thread::sleep(Duration::from_millis(2)))
            .expect("for");
        let after = pool.stats();
        assert!(
            after.run_ns >= before.run_ns + 8 * 2_000_000,
            "sleeping tasks must accrue run time: {} -> {}",
            before.run_ns,
            after.run_ns
        );
        assert!(after.queue_wait_ns >= before.queue_wait_ns);
    }

    #[test]
    fn dropping_last_handle_shuts_down_workers() {
        let pool = ThreadPool::new(2);
        let shared = Arc::clone(&pool.shared);
        drop(pool);
        // Workers observe shutdown within a park interval.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while Arc::strong_count(&shared) > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            Arc::strong_count(&shared),
            1,
            "workers must drop their Arc on shutdown"
        );
    }

    #[test]
    fn deterministic_results_across_pool_sizes() {
        let items: Vec<u64> = (0..500).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 5, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.parallel_map(&items, |&x| x * 3 + 1).expect("map");
            assert_eq!(out, reference, "{threads} threads");
        }
    }

    #[test]
    fn worker_local_reuses_per_thread_value() {
        let local: WorkerLocal<Vec<u32>> = WorkerLocal::new();
        local.with(|v| v.push(1));
        local.with(|v| v.push(2));
        let seen = local.with(|v| v.clone());
        assert_eq!(seen, vec![1, 2], "same thread must see the same instance");
    }

    #[test]
    fn worker_local_isolates_threads() {
        let local = Arc::new(WorkerLocal::<Vec<u64>>::new());
        let pool = ThreadPool::new(3);
        let items: Vec<u64> = (0..64).collect();
        let out = pool
            .parallel_map(&items, {
                let local = Arc::clone(&local);
                move |&x| {
                    local.with(|v| {
                        v.push(x);
                        v.len()
                    })
                }
            })
            .expect("map");
        // Every call appended exactly one element to *some* thread's
        // vec, so per-call lengths within a thread are strictly
        // increasing and the total across threads is the item count.
        assert_eq!(out.len(), items.len());
        let total: usize = local.with(|mine| mine.len()) + {
            // Drain the other threads' slots through the map.
            let slots = lock(&local.slots);
            let me = std::thread::current().id();
            slots
                .iter()
                .filter(|(id, _)| **id != me)
                .map(|(_, v)| v.len())
                .sum::<usize>()
        };
        assert_eq!(total, items.len());
    }
}
