//! Figure-regeneration benches: one per evaluation artifact in the
//! paper. Each bench prints the reproduced values (stderr rows) and
//! times the code path that produces them.
//!
//! Run with: `cargo bench -p dievent-bench --bench figures`

use criterion::{criterion_group, criterion_main, Criterion};
use dievent_analysis::overall_emotion::{fuse_emotions, EmotionEstimate, OverallEmotionConfig};
use dievent_analysis::{
    dominance_ranking, LookAtConfig, LookAtMatrix, LookAtSummary, ParticipantPose,
};
use dievent_bench::{intended_matrices, row, truth_matrices};
use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_emotion::Emotion;
use dievent_geometry::{CameraIntrinsics, Vec3};
use dievent_scene::{CameraRig, Scenario};
use dievent_video::{ShotDetectorConfig, VideoParser, VideoParserConfig};
use std::hint::black_box;

/// Fig. 2 — the acquisition platform: verify the two-camera geometry
/// (face-to-face, 2.5 m, −15° pitch, shared coverage) and time the
/// projection path it rests on.
fn fig2_acquisition(c: &mut Criterion) {
    let rig = CameraRig::paper_two_camera(6.0, 2.5, CameraIntrinsics::paper_camera());
    let head = Vec3::new(3.0, 0.0, 1.25);
    let both = rig.cameras.iter().all(|cam| cam.sees(head));
    row("FIG2", "cameras", rig.len());
    row("FIG2", "resolution", format!("{}x{} @ 25 fps", 640, 480));
    for (i, cam) in rig.cameras.iter().enumerate() {
        let a = cam.optical_axis();
        let pitch = (-a.z).atan2((a.x * a.x + a.y * a.y).sqrt()).to_degrees();
        row(
            "FIG2",
            &format!("C{} pitch (paper: 15° down)", i + 1),
            format!("{pitch:.1}°"),
        );
    }
    row("FIG2", "midpoint head covered by both cameras", both);

    c.bench_function("fig2_acquisition_projection", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cam in &rig.cameras {
                if let Some(p) = cam.project(black_box(head)) {
                    acc += p.pixel.x;
                }
                let ray = cam.unproject(dievent_geometry::Vec2::new(320.0, 240.0));
                acc += ray.dir.z;
            }
            acc
        })
    });
}

/// Fig. 3 — video parsing hierarchy: parse a 240-frame two-camera
/// gallery edit into scenes → shots → key frames.
fn fig3_video_parsing(c: &mut Criterion) {
    let scenario = Scenario::two_camera_dinner(240, 3);
    let mut spec = scenario.spec;
    let recording = Recording::capture(scenario);
    let take = 45usize;
    let frames: Vec<_> = (0..recording.frames())
        .map(|f| recording.frame((f / take) % 2, f).downsample2())
        .collect();
    spec.width /= 2;
    spec.height /= 2;
    let cfg = VideoParserConfig {
        shots: ShotDetectorConfig {
            min_cut_distance: 0.02,
            ..ShotDetectorConfig::default()
        },
        ..VideoParserConfig::default()
    };
    let parser = VideoParser::new(cfg);
    let s = parser.parse_frames(spec, &frames);
    row("FIG3", "frames", s.frame_count);
    row("FIG3", "scenes", s.scenes.len());
    row("FIG3", "shots (true takes: 6)", s.shots.len());
    row("FIG3", "keyframes", s.all_keyframes().len());

    let mut group = c.benchmark_group("fig3_video_parsing");
    group.sample_size(10);
    group.bench_function("parse_240_frames", |b| {
        b.iter(|| parser.parse_frames(black_box(spec), black_box(&frames)))
    });
    group.finish();
}

/// Fig. 4 — the gaze/look-at matrix with EC between P2 and P4:
/// reconstruct the figure's example and time the n(n−1) Eq. 5 tests.
fn fig4_gaze_matrix(c: &mut Criterion) {
    let heads = [
        Vec3::new(0.0, 0.0, 1.2),
        Vec3::new(2.0, 0.0, 1.2),
        Vec3::new(2.0, 2.0, 1.2),
        Vec3::new(0.0, 2.0, 1.2),
    ];
    // Fig. 4: P2 and P4 look at each other; P1 → P2; P3 → P1.
    let gazes = [
        (heads[1] - heads[0]).normalized(),
        (heads[3] - heads[1]).normalized(),
        (heads[0] - heads[2]).normalized(),
        (heads[1] - heads[3]).normalized(),
    ];
    let poses: Vec<ParticipantPose> = (0..4)
        .map(|i| ParticipantPose {
            person: i,
            head: heads[i],
            gaze: Some(gazes[i]),
            support: 1,
        })
        .collect();
    let cfg = LookAtConfig::default();
    let m = LookAtMatrix::from_poses(4, &poses, &cfg);
    row("FIG4", "matrix", format!("\n{m}"));
    row(
        "FIG4",
        "eye contacts (paper: P2↔P4)",
        format!("{:?}", m.eye_contacts()),
    );

    c.bench_function("fig4_lookat_matrix_4p", |b| {
        b.iter(|| LookAtMatrix::from_poses(4, black_box(&poses), black_box(&cfg)))
    });
}

/// Fig. 5 — overall emotion estimation: fuse per-participant emotion
/// estimates into the OH percentage.
fn fig5_overall_emotion(c: &mut Criterion) {
    let cfg = OverallEmotionConfig {
        participants: 4,
        smoothing: 0.0,
    };
    let ests = vec![
        EmotionEstimate::hard(0, Emotion::Happy, 0.9),
        EmotionEstimate::hard(1, Emotion::Happy, 0.8),
        EmotionEstimate::hard(2, Emotion::Neutral, 0.95),
        EmotionEstimate::hard(3, Emotion::Surprise, 0.6),
    ];
    let o = fuse_emotions(&ests, &cfg);
    row("FIG5", "per-participant", "happy, happy, neutral, surprise");
    row(
        "FIG5",
        "overall happiness OH",
        format!("{:.1}%", o.overall_happiness),
    );
    row("FIG5", "group valence", format!("{:.2}", o.valence));

    c.bench_function("fig5_overall_emotion_fusion", |b| {
        b.iter(|| fuse_emotions(black_box(&ests), black_box(&cfg)))
    });
}

/// Figs. 7 & 8 — look-at top-view maps at t = 10 s and t = 15 s through
/// the full pixel pipeline, and Fig. 9 — the 610-frame summary matrix.
///
/// The full pipeline run happens once (it is the expensive headline
/// reproduction); Criterion then times the per-frame geometric matrix
/// construction that the figures rest on.
fn figs789_prototype(c: &mut Criterion) {
    let scenario = Scenario::prototype();
    let positions: Vec<(f64, f64)> = scenario
        .participants
        .iter()
        .map(|p| (p.seat_head.x, p.seat_head.y))
        .collect();
    let recording = Recording::capture(scenario.clone());
    let pipeline = DiEventPipeline::new(PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    });
    let analysis = pipeline.run(&recording).expect("pipeline run");

    for (fig, t, paper) in [
        ("FIG7", 10.0, "yellow↔green mutual; black→blue; blue→green"),
        ("FIG8", 15.0, "green, blue, black → yellow"),
    ] {
        row(fig, "paper", paper);
        let looks: Vec<String> = analysis
            .looks_at(t)
            .iter()
            .map(|(g, tgt)| format!("P{}→P{}", g + 1, tgt + 1))
            .collect();
        row(fig, "detected", looks.join(", "));
        let _ = &positions;
    }

    row("FIG9", "paper (P1→P3)", 357);
    row("FIG9", "detected (P1→P3)", analysis.summary.get(0, 2));
    row(
        "FIG9",
        "scripted (P1→P3)",
        scenario.schedule.summary_matrix()[0][2],
    );
    row("FIG9", "matrix", format!("\n{}", analysis.summary_table()));
    let dom = dominance_ranking(&analysis.summary);
    row(
        "FIG9",
        "dominant (paper: P1)",
        dom.dominant
            .map(|d| format!("P{}", d + 1))
            .unwrap_or_default(),
    );
    row(
        "FIG9",
        "pipeline F1 vs ground truth",
        format!("{:.3}", analysis.validation.f1),
    );

    // Criterion: geometric per-frame matrix + 610-frame accumulation.
    let gt = recording.ground_truth.clone();
    let truth = truth_matrices(&gt, 0.30);
    c.bench_function("fig7_lookat_matrix_one_frame", |b| {
        let snap = &gt.snapshots[152];
        b.iter(|| {
            black_box(snap.lookat_matrix(black_box(0.30)));
        })
    });
    c.bench_function("fig9_summary_610_frames", |b| {
        b.iter(|| {
            let mut s = LookAtSummary::new(4);
            for m in &truth {
                s.add(black_box(m));
            }
            s
        })
    });
    // And the scripted-vs-detected agreement for the record.
    let intended = intended_matrices(&scenario);
    let v = dievent_bench::f1(&analysis.matrices, &intended);
    row(
        "FIG9",
        "pipeline F1 vs intended script",
        format!("{:.3}", v.f1),
    );
}

criterion_group!(
    figures,
    fig2_acquisition,
    fig3_video_parsing,
    fig4_gaze_matrix,
    fig5_overall_emotion,
    figs789_prototype
);
criterion_main!(figures);
