//! Ablation benches for the design choices DESIGN.md calls out:
//! attention-sphere radius, gaze-noise robustness, camera count, and
//! temporal smoothing window.
//!
//! Run with: `cargo bench -p dievent-bench --bench ablations`

use criterion::{criterion_group, criterion_main, Criterion};
use dievent_analysis::{smooth_matrices, GazeCriterion, LookAtConfig};
use dievent_bench::{f1, noisy_matrices, noisy_matrices_with, row, truth_matrices};
use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::{CameraRig, GroundTruth, Scenario};
use std::hint::black_box;

fn short_prototype_gt() -> (Scenario, GroundTruth) {
    let s = Scenario::prototype();
    let gt = GroundTruth {
        snapshots: s.simulate().snapshots.into_iter().take(200).collect(),
    };
    (s, gt)
}

/// Eq. 3's head-sphere radius `r`: too small rejects noisy-but-correct
/// gazes, too large credits glances at neighbours. Sweep under a fixed
/// 4° gaze noise.
fn ablation_head_radius(c: &mut Criterion) {
    let (_s, gt) = short_prototype_gt();
    for radius in [0.10, 0.20, 0.30, 0.45, 0.60] {
        let truth = truth_matrices(&gt, 0.30);
        let noisy = noisy_matrices(&gt, 4.0, radius, 7);
        let v = f1(&noisy, &truth);
        row(
            "ABL-RADIUS",
            &format!("r = {radius:.2} m (4° gaze noise)"),
            format!(
                "precision {:.3} recall {:.3} F1 {:.3}",
                v.precision, v.recall, v.f1
            ),
        );
    }
    c.bench_function("ablation_radius_matrix_sweep", |b| {
        b.iter(|| noisy_matrices(black_box(&gt), 4.0, black_box(0.30), 7))
    });
}

/// Gaze-noise robustness: F1 vs RMS angular error of the gaze estimate
/// at the default radius.
fn ablation_gaze_noise(c: &mut Criterion) {
    let (_s, gt) = short_prototype_gt();
    let truth = truth_matrices(&gt, 0.30);
    for sigma in [0.0, 1.0, 2.0, 4.0, 6.0, 10.0, 15.0] {
        let noisy = noisy_matrices(&gt, sigma, 0.30, 11);
        let v = f1(&noisy, &truth);
        row(
            "ABL-NOISE",
            &format!("gaze noise {sigma:>4.1}° RMS"),
            format!("F1 {:.3}", v.f1),
        );
    }
    c.bench_function("ablation_noise_200_frames", |b| {
        b.iter(|| noisy_matrices(black_box(&gt), black_box(6.0), 0.30, 11))
    });
}

/// Camera-count ablation through the full pixel pipeline: 1, 2, and 4
/// cameras on a 100-frame window of the prototype. Fewer cameras lose
/// faces (every head is frontal to at most one or two views) — the
/// multi-view fusion the paper's platform motivates.
fn ablation_cameras(c: &mut Criterion) {
    let base = Scenario::prototype();
    for &n_cams in &[1usize, 2, 4] {
        let mut scenario = base.clone();
        scenario.rig = CameraRig {
            cameras: base.rig.cameras.iter().copied().take(n_cams).collect(),
            description: format!("{n_cams} of 4 corner cameras"),
        };
        // Shorten: keep the first 100 frames of the schedule.
        let recording = Recording::capture(scenario);
        let pipeline = DiEventPipeline::new(PipelineConfig {
            classify_emotions: false,
            parse_video: false,
            ..PipelineConfig::default()
        });
        // Run on a truncated recording by slicing ground truth.
        let mut short = recording.clone();
        short.ground_truth.snapshots.truncate(100);
        let analysis = pipeline.run(&short).expect("pipeline run");
        row(
            "ABL-CAMERAS",
            &format!("{n_cams} camera(s)"),
            format!(
                "precision {:.3} recall {:.3} F1 {:.3}",
                analysis.validation.precision, analysis.validation.recall, analysis.validation.f1
            ),
        );
    }

    // Criterion: per-frame single-camera extraction cost is covered in
    // the throughput bench; here time the fused 4-camera geometric step.
    let (_s, gt) = short_prototype_gt();
    c.bench_function("ablation_cameras_geometric_baseline", |b| {
        b.iter(|| truth_matrices(black_box(&gt), 0.30))
    });
}

/// Temporal smoothing window: bridging dropouts vs blurring
/// transitions, measured at 6° gaze noise.
fn ablation_mutual_window(c: &mut Criterion) {
    let (_s, gt) = short_prototype_gt();
    let truth = truth_matrices(&gt, 0.30);
    let noisy = noisy_matrices(&gt, 6.0, 0.30, 23);
    for window in [1usize, 3, 5, 9, 15] {
        let smoothed = smooth_matrices(&noisy, window);
        let v = f1(&smoothed, &truth);
        row(
            "ABL-WINDOW",
            &format!("majority window {window:>2}"),
            format!("F1 {:.3}", v.f1),
        );
    }
    c.bench_function("ablation_smoothing_window5", |b| {
        b.iter(|| smooth_matrices(black_box(&noisy), black_box(5)))
    });
}

/// Sphere (the paper's Eq. 3–5) vs attention cone: the sphere is
/// distance-dependent (the same angular error fails on far targets),
/// the cone is not. Sweep under increasing gaze noise.
fn ablation_criterion(c: &mut Criterion) {
    let (_s, gt) = short_prototype_gt();
    let truth = truth_matrices(&gt, 0.30);
    for sigma in [2.0, 4.0, 8.0] {
        let sphere = noisy_matrices(&gt, sigma, 0.30, 31);
        let cone_cfg = LookAtConfig {
            criterion: GazeCriterion::Cone {
                half_angle: 9f64.to_radians(),
            },
            ..LookAtConfig::default()
        };
        let cone = noisy_matrices_with(&gt, sigma, &cone_cfg, 31);
        row(
            "ABL-CRITERION",
            &format!("noise {sigma:>3.1}° sphere r=0.30"),
            format!("F1 {:.3}", f1(&sphere, &truth).f1),
        );
        row(
            "ABL-CRITERION",
            &format!("noise {sigma:>3.1}° cone 9°"),
            format!("F1 {:.3}", f1(&cone, &truth).f1),
        );
    }
    let cone_cfg = LookAtConfig {
        criterion: GazeCriterion::Cone {
            half_angle: 9f64.to_radians(),
        },
        ..LookAtConfig::default()
    };
    c.bench_function("ablation_criterion_cone_200_frames", |b| {
        b.iter(|| noisy_matrices_with(black_box(&gt), 4.0, &cone_cfg, 31))
    });
}

/// Paper-literal matrix filling (mark EVERY intersected sphere) vs the
/// nearest-hit refinement (a gaze cannot pass through one head to
/// credit another). With aligned seats the literal rule double-credits
/// occluded targets.
fn ablation_nearest_hit(c: &mut Criterion) {
    let (_s, gt) = short_prototype_gt();
    let truth = truth_matrices(&gt, 0.30);
    for (label, nearest) in [
        ("paper-literal (all hits)", false),
        ("nearest-hit (default)", true),
    ] {
        let cfg = LookAtConfig {
            nearest_hit_only: nearest,
            ..LookAtConfig::default()
        };
        let mats = noisy_matrices_with(&gt, 4.0, &cfg, 41);
        let v = f1(&mats, &truth);
        row(
            "ABL-NEAREST",
            label,
            format!(
                "precision {:.3} recall {:.3} F1 {:.3}",
                v.precision, v.recall, v.f1
            ),
        );
    }
    let literal = LookAtConfig {
        nearest_hit_only: false,
        ..LookAtConfig::default()
    };
    c.bench_function("ablation_literal_200_frames", |b| {
        b.iter(|| noisy_matrices_with(black_box(&gt), 4.0, &literal, 41))
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_head_radius, ablation_gaze_noise, ablation_cameras, ablation_mutual_window, ablation_criterion, ablation_nearest_hit
}
criterion_main!(ablations);
