//! Per-stage throughput benches: the cost of every pipeline stage on
//! representative workloads (one 640×480 frame, one face patch, one
//! repository operation).
//!
//! Run with: `cargo bench -p dievent-bench --bench throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use dievent_analysis::{fuse_frame, FusionConfig};
use dievent_core::{
    train_emotion_classifier, DiEventPipeline, PipelineConfig, Recording, Telemetry,
    TrainingSetConfig,
};
use dievent_emotion::{lbp_feature_vector, Emotion, LbpConfig};
use dievent_metadata::{MetaRecord, MetadataRepository, Query, RecordKind};
use dievent_scene::{render_face_patch, Scenario};
use dievent_video::frame_distance;
use dievent_vision::{
    detect_faces, estimate_pose, locate_landmarks, DetectorConfig, LandmarkConfig, PoseConfig,
};
use std::hint::black_box;

fn rendering_and_vision(c: &mut Criterion) {
    let scenario = Scenario::prototype();
    let recording = Recording::capture(scenario.clone());

    c.bench_function("render_frame_640x480_4p", |b| {
        b.iter(|| recording.frame(black_box(0), black_box(100)))
    });

    let frame = recording.frame(0, 100);
    c.bench_function("detect_faces_640x480", |b| {
        b.iter(|| detect_faces(black_box(&frame), &DetectorConfig::default()))
    });

    let dets = detect_faces(&frame, &DetectorConfig::default());
    let det = dets[0];
    c.bench_function("locate_landmarks_one_face", |b| {
        b.iter(|| {
            locate_landmarks(
                black_box(&frame),
                black_box(&det),
                &LandmarkConfig::default(),
            )
        })
    });

    if let Some(lm) = locate_landmarks(&frame, &det, &LandmarkConfig::default()) {
        let cam = scenario.rig.cameras[0];
        c.bench_function("estimate_pose_one_face", |b| {
            b.iter(|| {
                estimate_pose(
                    black_box(&det),
                    black_box(&lm),
                    black_box(&cam),
                    &PoseConfig::default(),
                )
            })
        });
    }

    let prev = recording.frame(0, 99);
    c.bench_function("frame_distance_640x480", |b| {
        b.iter(|| frame_distance(black_box(&prev), black_box(&frame)))
    });
}

fn emotion_stack(c: &mut Criterion) {
    let patch = render_face_patch(Emotion::Happy, 225, 1, 7, 48);
    let lbp = LbpConfig::default();
    c.bench_function("lbp_descriptor_48x48", |b| {
        b.iter(|| lbp_feature_vector(black_box(&patch), &lbp))
    });

    let (classifier, _) = train_emotion_classifier(
        &TrainingSetConfig {
            variants: 6,
            identities: 2,
            patch_size: 48,
        },
        1,
    );
    c.bench_function("emotion_classify_one_patch", |b| {
        b.iter(|| classifier.classify(black_box(&patch)))
    });

    let mut group = c.benchmark_group("emotion_training");
    group.sample_size(10);
    group.bench_function("train_small_classifier", |b| {
        b.iter(|| {
            train_emotion_classifier(
                &TrainingSetConfig {
                    variants: 3,
                    identities: 2,
                    patch_size: 48,
                },
                black_box(2),
            )
        })
    });
    group.finish();
}

fn analysis_and_metadata(c: &mut Criterion) {
    // Fusion of a realistic 4-camera frame.
    let scenario = Scenario::prototype();
    let gt = scenario.simulate();
    let snap = &gt.snapshots[100];
    let mut frame_obs = dievent_analysis::FrameObservations::default();
    for cam in &scenario.rig.cameras {
        let to_cam = cam.extrinsics();
        let persons = snap
            .states
            .iter()
            .enumerate()
            .map(|(i, st)| dievent_analysis::CameraObservation {
                person: i,
                head_cam: to_cam.transform_point(st.head),
                gaze_cam: Some(to_cam.transform_dir(st.gaze)),
                weight: 1.0,
            })
            .collect();
        frame_obs.cameras.push((cam.pose, persons));
    }
    c.bench_function("fuse_frame_4cams_4p", |b| {
        b.iter(|| fuse_frame(black_box(&frame_obs), &FusionConfig::default()))
    });

    // Metadata ingest + query.
    c.bench_function("metadata_insert", |b| {
        let repo = MetadataRepository::in_memory();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            repo.insert(
                MetaRecord::new(RecordKind::FrameAnalysis)
                    .with_span(i as f64 * 0.04, i as f64 * 0.04 + 0.04)
                    .with_attr("frame", i)
                    .with_attr("eye_contacts", i % 3),
            )
            .expect("insert")
        })
    });

    let repo = MetadataRepository::in_memory();
    for f in 0..2000i64 {
        repo.insert(
            MetaRecord::new(RecordKind::FrameAnalysis)
                .with_span(f as f64 * 0.04, f as f64 * 0.04 + 0.04)
                .with_attr("frame", f)
                .with_attr("eye_contacts", f % 3),
        )
        .expect("insert");
    }
    let q_indexed = Query::new().eq("eye_contacts", 2i64).limit(50);
    c.bench_function("metadata_query_indexed_2000", |b| {
        b.iter(|| repo.query(black_box(&q_indexed)))
    });
    let q_span = Query::new().overlapping(10.0, 12.0);
    c.bench_function("metadata_query_span_2000", |b| {
        b.iter(|| repo.query(black_box(&q_span)))
    });
    let q_range = Query::new().ge("frame", 500.0).le("frame", 600.0);
    c.bench_function("metadata_query_range_2000", |b| {
        b.iter(|| repo.query(black_box(&q_range)))
    });
}

fn telemetry_overhead(c: &mut Criterion) {
    // The same short end-to-end run with instrumentation off and on:
    // the delta is the observability tax (documented target: <2% when
    // disabled, i.e. no-op instruments must be free in practice).
    let recording = Recording::capture(Scenario::two_camera_dinner(20, 3));
    let config = PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    };
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    group.bench_function("pipeline_20f_telemetry_disabled", |b| {
        let pipeline = DiEventPipeline::new_with_telemetry(config, Telemetry::disabled());
        b.iter(|| pipeline.run(black_box(&recording)).expect("pipeline run"))
    });
    group.bench_function("pipeline_20f_telemetry_enabled", |b| {
        let pipeline = DiEventPipeline::new(config);
        b.iter(|| pipeline.run(black_box(&recording)).expect("pipeline run"))
    });
    group.finish();
}

fn streaming_throughput(c: &mut Criterion) {
    // Frames/s through a live streaming session as a function of the
    // bounded channel capacity: capacity 1 serializes producer and
    // extractor, larger queues let them pipeline.
    let recording = Recording::capture(Scenario::two_camera_dinner(20, 3));
    let frames: Vec<Vec<_>> = (0..recording.cameras())
        .map(|c| {
            (0..recording.frames())
                .map(|f| recording.frame(c, f))
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("streaming_throughput");
    group.sample_size(10);
    for capacity in [1usize, 8, 64] {
        let config = PipelineConfig::builder()
            .classify_emotions(false)
            .parse_video(false)
            .channel_capacity(capacity)
            .build()
            .expect("valid config");
        let pipeline = DiEventPipeline::new_with_telemetry(config, Telemetry::disabled());
        group.bench_function(&format!("session_20f_2cam_cap{capacity}"), |b| {
            b.iter(|| {
                let mut session = pipeline
                    .session(black_box(&recording.scenario))
                    .expect("session");
                let feeds = session.take_feeds().expect("feeds");
                std::thread::scope(|s| {
                    for mut feed in feeds {
                        let frames = &frames;
                        s.spawn(move || {
                            for frame in &frames[feed.camera().index()] {
                                feed.push(frame.clone()).expect("push");
                            }
                        });
                    }
                });
                session.finish().expect("finish")
            })
        });
    }
    group.finish();
}

criterion_group!(
    throughput,
    rendering_and_vision,
    emotion_stack,
    analysis_and_metadata,
    telemetry_overhead,
    streaming_throughput
);
criterion_main!(throughput);
