//! Multi-tenant load generator: drives N simulated dining venues
//! against one `EventServer` over the framed TCP protocol and writes
//! the numbers to a JSON report (default `BENCH_7.json`; override with
//! `--out FILE` or the first positional argument). With
//! `--merge-into FILE` the run is instead embedded as the `"server"`
//! subsection of an existing report (e.g. the perf runner's BENCH
//! JSON), so kernel and tenant-level numbers land in one file.
//!
//! Each venue is one client thread with its own connection: it opens
//! its event, streams a shared pre-rendered two-camera recording
//! frame by frame (timing every send — under `Block` backpressure a
//! send stalls exactly when that tenant's queue is full, so the send
//! distribution *is* the ingest-latency distribution), then finishes
//! and checks its conservation ledger. Mid-run, the main thread probes
//! the live `GET /tenants` snapshot on the shared observability plane.
//!
//! Reported:
//!
//! 1. **sessions/s** — venues completed end-to-end per wall second.
//! 2. **ingest latency** — p50/p99/max over every timed send.
//! 3. **fairness** — max/min per-venue completion-time ratio. All
//!    venues start together and share one global compute pool, so a
//!    fair server finishes them close together; the run fails if the
//!    ratio exceeds `--fairness-bound` (default 10).
//! 4. **single-session baseline** — the same per-venue workload
//!    through a direct in-process `PipelineSession`, for scale.
//!
//! `--quick` shrinks the fleet for CI smoke use (the JSON is still
//! written, flagged with `"quick": true`). `--tenants N` / `--frames F`
//! override either mode's shape.
//!
//! Run with: `cargo run --release -p dievent-bench --bin loadgen`

use dievent_core::{DiEventPipeline, EventId, PipelineConfig, Recording};
use dievent_scene::Scenario;
use dievent_server::{EventClient, EventServer, ServerConfig};
use serde_json::json;
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Minimal HTTP/1.1 GET over std TcpStream: returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to observe endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn quick_config() -> PipelineConfig {
    PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tenants: u64 = arg_value(&args, "--tenants")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 8 } else { 32 });
    let frames: usize = arg_value(&args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 6 } else { 12 });
    let fairness_bound: f64 = arg_value(&args, "--fairness-bound")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let out_path = arg_value(&args, "--out")
        .or_else(|| {
            args.iter()
                .find(|a| !a.starts_with("--") && a.parse::<f64>().is_err())
                .cloned()
        })
        .unwrap_or_else(|| "BENCH_7.json".to_string());
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "loadgen: {tenants} venues x {frames} frames, host has {threads} hardware thread(s), quick = {quick}"
    );

    // One shared pre-rendered recording: every venue streams the same
    // pixels, so the generator measures the server, not the renderer.
    let scenario = Scenario::two_camera_dinner(frames, 7);
    let recording = Recording::capture(scenario.clone());
    let cameras = recording.cameras();

    // --- Single-session baseline: the same workload, in-process. ---
    let baseline_s = {
        let start = Instant::now();
        let mut session = DiEventPipeline::new(quick_config())
            .session(&scenario)
            .expect("baseline session");
        for f in 0..frames {
            for c in 0..cameras {
                session.push_frame(c, recording.frame(c, f)).expect("push");
            }
        }
        let analysis = session.finish().expect("baseline finish");
        assert_eq!(analysis.matrices.len(), frames);
        start.elapsed().as_secs_f64()
    };
    eprintln!(
        "baseline: one direct session = {:.3} s ({:.0} camera-frames/s)",
        baseline_s,
        (frames * cameras) as f64 / baseline_s
    );

    // --- The fleet. ---
    let server = EventServer::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        ServerConfig {
            max_sessions: tenants as usize,
            max_connections: tenants as usize + 2,
            observe_addr: Some("127.0.0.1:0".parse().expect("loopback")),
            sample_interval: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .expect("bind event server");
    let ingest = server.local_addr();
    let observe = server.observe_addr().expect("observability plane bound");

    struct VenueResult {
        completion_s: f64,
        send_latencies_s: Vec<f64>,
        pushed: u64,
    }

    let wall = Instant::now();
    let (results, probe_open) = std::thread::scope(|s| {
        let handles: Vec<_> = (1..=tenants)
            .map(|id| {
                let recording = &recording;
                let scenario = &scenario;
                s.spawn(move || {
                    let event = EventId::new(id);
                    let start = Instant::now();
                    let mut client = EventClient::connect(ingest).expect("connect");
                    client
                        .open_event(event, scenario, quick_config())
                        .expect("open io")
                        .expect("open admitted");
                    let mut send_latencies_s = Vec::with_capacity(frames * cameras);
                    for f in 0..frames {
                        for c in 0..cameras {
                            let t = Instant::now();
                            client
                                .send_frame(event, c.into(), f as u64, recording.frame(c, f))
                                .expect("send frame");
                            send_latencies_s.push(t.elapsed().as_secs_f64());
                        }
                    }
                    let done = client
                        .finish_event(event)
                        .expect("finish io")
                        .expect("finish accepted");
                    assert_eq!(
                        done.processed + done.dropped,
                        done.pushed,
                        "venue {id}: conservation"
                    );
                    assert!(
                        client.rejections.is_empty(),
                        "venue {id}: {:?}",
                        client.rejections
                    );
                    VenueResult {
                        completion_s: start.elapsed().as_secs_f64(),
                        send_latencies_s,
                        pushed: done.pushed,
                    }
                })
            })
            .collect();

        // Mid-run probe: the plane must answer while venues stream.
        std::thread::sleep(Duration::from_millis(if quick { 20 } else { 50 }));
        let (status, body) = http_get(observe, "/tenants");
        assert!(status.contains("200"), "GET /tenants mid-run: {status}");
        let probe_open: u64 = body
            .lines()
            .find(|l| l.trim_start().starts_with("\"open\""))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
            .expect("open count in /tenants body");
        eprintln!("mid-run GET /tenants -> {status}, {probe_open} venues open");

        let results: Vec<VenueResult> = handles
            .into_iter()
            .map(|h| h.join().expect("venue thread"))
            .collect();
        (results, probe_open)
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let completions: Vec<f64> = results.iter().map(|r| r.completion_s).collect();
    let slowest = completions.iter().cloned().fold(f64::MIN, f64::max);
    let fastest = completions.iter().cloned().fold(f64::MAX, f64::min);
    let fairness = slowest / fastest;
    let mut sends: Vec<f64> = results
        .iter()
        .flat_map(|r| r.send_latencies_s.iter().copied())
        .collect();
    sends.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pushed_total: u64 = results.iter().map(|r| r.pushed).sum();
    assert_eq!(pushed_total, tenants * (frames * cameras) as u64);

    let sessions_per_s = tenants as f64 / wall_s;
    eprintln!(
        "fleet: {tenants} venues in {wall_s:.3} s = {sessions_per_s:.2} sessions/s; \
         ingest p99 = {:.1} us; fairness max/min = {fairness:.2}",
        percentile(&sends, 0.99) * 1e6
    );
    assert!(
        fairness <= fairness_bound,
        "per-venue completion spread {fairness:.2} exceeds bound {fairness_bound}: \
         slowest {slowest:.3} s vs fastest {fastest:.3} s"
    );

    let report = json!({
        "bench": "BENCH_7",
        "quick": quick,
        "host_threads": threads,
        "tenants": tenants,
        "frames_per_tenant": frames,
        "cameras": cameras,
        "wall_seconds": wall_s,
        "sessions_per_s": sessions_per_s,
        "ingest_latency_us": {
            "p50": percentile(&sends, 0.50) * 1e6,
            "p99": percentile(&sends, 0.99) * 1e6,
            "max": percentile(&sends, 1.0) * 1e6,
            "sends": sends.len(),
        },
        "fairness": {
            "fastest_completion_s": fastest,
            "slowest_completion_s": slowest,
            "ratio": fairness,
            "bound": fairness_bound,
        },
        "tenants_probe": {
            "open_at_probe": probe_open,
        },
        "single_session_baseline": {
            "seconds": baseline_s,
            "camera_fps": (frames * cameras) as f64 / baseline_s,
        },
    });
    // `--merge-into FILE`: embed this run as the `"server"` subsection
    // of an existing report (the perf runner's BENCH file), so one JSON
    // carries both the microbench and the tenant-level numbers.
    if let Some(merge_path) = arg_value(&args, "--merge-into") {
        let text = std::fs::read_to_string(&merge_path).expect("read merge target");
        let mut target = serde_json::parse(&text).expect("parse merge target");
        let serde_json::Value::Object(obj) = &mut target else {
            panic!("merge target must be a JSON object");
        };
        obj.insert("server".to_string(), report.clone());
        let rendered = serde_json::to_string_pretty(&target).expect("render json");
        std::fs::write(&merge_path, rendered + "\n").expect("write merge target");
        eprintln!("merged server section into {merge_path}");
        return;
    }
    let rendered = serde_json::to_string_pretty(&report).expect("render json");
    std::fs::write(&out_path, rendered + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
