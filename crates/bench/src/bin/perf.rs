//! One-shot performance runner: measures the hot paths and writes the
//! numbers to a JSON report (default `BENCH_6.json`; override with
//! `--out FILE` or the first positional argument).
//!
//! Measurements:
//!
//! 1. **End-to-end** — the §III prototype (4 cameras × 610 frames)
//!    through the full default pipeline, `frame_parallel` off vs on,
//!    reported as aggregate camera-frames/second plus the speedup.
//! 2. **LBP** — nanoseconds per 48×48 descriptor (the stage-3 emotion
//!    kernel: const uniform table + interior fast path).
//! 3. **Look-at** — nanoseconds per frame of ray–sphere eye-contact
//!    matrix construction at n ∈ {4, 8, 16} participants (squared-
//!    distance early reject + scratch reuse).
//! 4. **Pool scaling** — a fixed LBP workload fanned across 1..=N
//!    worker threads of a private pool, speedup relative to 1 thread.
//! 5. **Observability overhead** — the frame-parallel end-to-end run
//!    repeated with the live observability plane enabled (embedded
//!    metrics endpoint + rate sampler), reported as overhead vs. the
//!    unobserved run. This keeps the "the plane is ~free" claim honest.
//! 6. **Frame lineage** — the frame-parallel run repeated with
//!    per-frame lineage tracing on, reporting the tracer's overhead
//!    plus the per-stage latency attribution (queue-wait / extract /
//!    reorder-hold / fuse p50/p95/p99) it produced.
//!
//! Every number in the JSON is host-relative: compare runs only against
//! the recorded `host_threads` (and treat `"quick": true` as smoke, not
//! benchmark, data).
//!
//! `--quick` shrinks every measurement for CI smoke use (the JSON is
//! still written, flagged with `"quick": true`).
//!
//! Run with: `cargo run --release -p dievent-bench --bin perf`

use dievent_analysis::{LookAtConfig, LookAtMatrix, LookAtScratch, ParticipantPose};
use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_emotion::{lbp_feature_vector_into, Emotion, LbpConfig};
use dievent_geometry::Vec3;
use dievent_pool::ThreadPool;
use dievent_scene::{render_face_patch, Scenario};
use dievent_video::GrayFrame;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| args.iter().find(|a| !a.starts_with("--")).cloned())
        .unwrap_or_else(|| "BENCH_6.json".to_string());
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("perf: host has {threads} hardware thread(s); quick = {quick}");

    // --- 1. End-to-end pipeline, sequential vs frame-parallel. ---
    let scenario = if quick {
        Scenario::two_camera_dinner(40, 11)
    } else {
        Scenario::prototype()
    };
    let recording = Recording::capture(scenario);
    let frames = recording.frames();
    let cameras = recording.cameras();
    // Best-of-N wall clock: single end-to-end runs jitter by ~10% on a
    // busy 1-core host, which would drown the numbers the JSON exists
    // to compare (parallel speedup, observability overhead).
    let e2e_reps = if quick { 1 } else { 3 };
    let run_fps = |config: PipelineConfig| {
        let pipeline = DiEventPipeline::new(config);
        let mut best = f64::INFINITY;
        for _ in 0..e2e_reps {
            let started = Instant::now();
            let analysis = pipeline.run(&recording).expect("pipeline run");
            let elapsed = started.elapsed().as_secs_f64();
            assert_eq!(analysis.matrices.len(), frames);
            best = best.min(elapsed);
        }
        ((frames * cameras) as f64 / best, best)
    };
    eprintln!("perf: end-to-end sequential ({cameras} cam x {frames} frames)...");
    let (seq_fps, seq_s) = run_fps(PipelineConfig {
        frame_parallel: false,
        ..PipelineConfig::default()
    });
    eprintln!("perf:   {seq_fps:.1} camera-frames/s ({seq_s:.2}s)");
    eprintln!("perf: end-to-end frame-parallel...");
    let (par_fps, par_s) = run_fps(PipelineConfig::default());
    eprintln!("perf:   {par_fps:.1} camera-frames/s ({par_s:.2}s)");
    // Same run, observed: embedded HTTP endpoint bound to a free port
    // plus the 250 ms rate sampler — the configuration a deployment
    // scraping `/metrics` would use.
    eprintln!("perf: end-to-end frame-parallel + live observability plane...");
    let (obs_fps, obs_s) = run_fps(
        PipelineConfig::builder()
            .serve_metrics("127.0.0.1:0".parse().expect("loopback addr"))
            .build()
            .expect("valid config"),
    );
    let obs_overhead = obs_s / par_s - 1.0;
    eprintln!(
        "perf:   {obs_fps:.1} camera-frames/s ({obs_s:.2}s, {:+.1}% vs unobserved)",
        obs_overhead * 100.0
    );
    // Same run with per-frame lineage tracing: every frame is stamped
    // at ingest and each stage boundary, and the final analysis carries
    // the per-stage latency attribution this section records.
    eprintln!("perf: end-to-end frame-parallel + lineage tracing...");
    let lineage_pipeline = DiEventPipeline::new(
        PipelineConfig::builder()
            .trace_lineage(true)
            .build()
            .expect("valid config"),
    );
    let mut lin_s = f64::INFINITY;
    let mut lineage = None;
    for _ in 0..e2e_reps {
        let started = Instant::now();
        let analysis = lineage_pipeline.run(&recording).expect("pipeline run");
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(analysis.matrices.len(), frames);
        if elapsed < lin_s {
            lin_s = elapsed;
            lineage = analysis.lineage;
        }
    }
    let lin_fps = (frames * cameras) as f64 / lin_s;
    let lin_overhead = lin_s / par_s - 1.0;
    let lineage = lineage.expect("lineage report from traced run");
    eprintln!(
        "perf:   {lin_fps:.1} camera-frames/s ({lin_s:.2}s, {:+.1}% vs untraced; {} frames traced)",
        lin_overhead * 100.0,
        lineage.summary.frames_traced
    );

    // --- 2. LBP ns/descriptor. ---
    let patch = render_face_patch(Emotion::Happy, 225, 1, 7, 48);
    let lbp_iters = if quick { 200 } else { 2000 };
    let lbp_ns = time_per_iter(lbp_iters, || {
        let config = LbpConfig::default();
        let mut feature = Vec::new();
        move || {
            lbp_feature_vector_into(black_box(&patch), &config, &mut feature);
            black_box(feature.len());
        }
    });
    eprintln!("perf: lbp 48x48 descriptor: {lbp_ns:.0} ns");

    // --- 3. Look-at matrix ns/frame at n in {4, 8, 16}. ---
    let lookat_iters = if quick { 2_000 } else { 50_000 };
    let mut lookat_ns = [0.0_f64; 3];
    for (slot, n) in [4usize, 8, 16].into_iter().enumerate() {
        let poses = ring_poses(n);
        let config = LookAtConfig::default();
        let ns = time_per_iter(lookat_iters, || {
            let poses = poses.clone();
            let mut scratch = LookAtScratch::new();
            move || {
                let m = LookAtMatrix::from_poses_with(n, black_box(&poses), &config, &mut scratch);
                black_box(m.count_ones());
            }
        });
        eprintln!("perf: look-at n={n}: {ns:.0} ns/frame");
        lookat_ns[slot] = ns;
    }

    // --- 4. Pool scaling on a fixed LBP workload. ---
    let patches: Vec<GrayFrame> = (0..if quick { 32 } else { 256 })
        .map(|i| render_face_patch(Emotion::Neutral, 200, i % 8, i as u32, 48))
        .collect();
    let mut scaling = Vec::new();
    let mut base_ms = 0.0_f64;
    for k in pool_sizes(threads) {
        let pool = ThreadPool::new(k);
        let config = LbpConfig::default();
        // Warm the workers up before timing.
        let _ = pool.parallel_map(&patches, |p| lbp_feature_vector_into_len(p, &config));
        let started = Instant::now();
        let reps = if quick { 2 } else { 10 };
        for _ in 0..reps {
            let lens = pool
                .parallel_map(&patches, |p| lbp_feature_vector_into_len(p, &config))
                .expect("pool map");
            black_box(lens);
        }
        let ms = started.elapsed().as_secs_f64() * 1e3 / reps as f64;
        if base_ms == 0.0 {
            base_ms = ms;
        }
        let speedup = base_ms / ms;
        eprintln!("perf: pool x{k}: {ms:.2} ms/batch (speedup {speedup:.2})");
        scaling.push(json!({ "threads": k, "ms_per_batch": ms, "speedup": speedup }));
    }

    let stage_json = |name: &str| match lineage.summary.stage(name) {
        Some(s) => json!({
            "count": s.count,
            "mean_s": s.mean_s,
            "p50_s": s.p50_s,
            "p95_s": s.p95_s,
            "p99_s": s.p99_s,
            "max_s": s.max_s,
        }),
        None => serde_json::Value::Null,
    };
    let report = json!({
        "bench": "BENCH_6",
        "quick": quick,
        "host_threads": threads,
        "end_to_end": {
            "frames": frames,
            "cameras": cameras,
            "sequential_camera_fps": seq_fps,
            "sequential_seconds": seq_s,
            "frame_parallel_camera_fps": par_fps,
            "frame_parallel_seconds": par_s,
            "speedup": par_fps / seq_fps,
        },
        "observability_plane": {
            "observed_camera_fps": obs_fps,
            "observed_seconds": obs_s,
            "overhead_vs_frame_parallel": obs_overhead,
        },
        "frame_lineage": {
            "traced_camera_fps": lin_fps,
            "traced_seconds": lin_s,
            "overhead_vs_frame_parallel": lin_overhead,
            "frames_traced": lineage.summary.frames_traced,
            "frames_incomplete": lineage.summary.frames_incomplete,
            "exemplars": lineage.exemplars.len(),
            "stages": {
                "queue_wait": stage_json("queue_wait"),
                "extract": stage_json("extract"),
                "reorder_hold": stage_json("reorder_hold"),
                "fuse": stage_json("fuse"),
                "total": stage_json("total"),
            },
        },
        "lbp_ns_per_descriptor_48x48": lbp_ns,
        "lookat_ns_per_frame": {
            "4": lookat_ns[0],
            "8": lookat_ns[1],
            "16": lookat_ns[2],
        },
        "pool_scaling": scaling,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render json");
    std::fs::write(&out_path, rendered + "\n").expect("write report");
    eprintln!("perf: wrote {out_path}");
}

/// Average nanoseconds per iteration of the closure `setup` builds.
fn time_per_iter<F: FnMut()>(iters: usize, setup: impl FnOnce() -> F) -> f64 {
    let mut f = setup();
    // Warm-up.
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn lbp_feature_vector_into_len(patch: &GrayFrame, config: &LbpConfig) -> usize {
    let mut feature = Vec::new();
    lbp_feature_vector_into(patch, config, &mut feature);
    feature.len()
}

/// Participants on a circle, each gazing at the participant opposite —
/// a dense workload where most rays pass near several heads.
fn ring_poses(n: usize) -> Vec<ParticipantPose> {
    (0..n)
        .map(|i| {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            let head = Vec3::new(a.cos() * 1.2, a.sin() * 1.2, 1.1);
            let target_a = (i + n / 2) as f64 / n as f64 * std::f64::consts::TAU;
            let target = Vec3::new(target_a.cos() * 1.2, target_a.sin() * 1.2, 1.1);
            ParticipantPose {
                person: i,
                head,
                gaze: Some((target - head).normalized()),
                support: 1,
            }
        })
        .collect()
}

/// 1, 2, 4, ... up to (and always including) the host thread count.
fn pool_sizes(max: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut k = 1;
    while k < max {
        sizes.push(k);
        k *= 2;
    }
    sizes.push(max);
    sizes
}
