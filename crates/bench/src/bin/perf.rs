//! One-shot performance runner: measures the hot paths and writes the
//! numbers to a JSON report (default `BENCH_9.json`; override with
//! `--out FILE` or the first positional argument).
//!
//! Measurements:
//!
//! 1. **End-to-end** — the §III prototype (4 cameras × 610 frames)
//!    through the full default pipeline, `frame_parallel` off vs on,
//!    reported as aggregate camera-frames/second plus the speedup.
//! 2. **Emotion kernels** — nanoseconds per 48×48 LBP descriptor for
//!    the vectorized row-sliced kernel *and* the clamped per-pixel
//!    reference oracle, plus nanoseconds per face for the MLP forward
//!    pass scalar vs batched (4 faces per batch, the per-frame shape).
//! 3. **Look-at** — nanoseconds per frame of ray–sphere eye-contact
//!    matrix construction at n ∈ {4, 8, 16} participants (squared-
//!    distance early reject + scratch reuse).
//! 4. **Pool scaling** — a fixed LBP workload fanned across worker
//!    counts 1/2/4/8 (clipped to the host), speedup relative to 1
//!    thread. Thread counts beyond the host's hardware threads are
//!    recorded as explicit *refusal* entries: this runner does not
//!    claim speedups it could not measure.
//! 5. **Observability overhead** — the frame-parallel end-to-end run
//!    repeated with the live observability plane enabled (embedded
//!    metrics endpoint + rate sampler), reported as overhead vs. the
//!    unobserved run. This keeps the "the plane is ~free" claim honest.
//! 6. **Frame lineage** — the frame-parallel run repeated with
//!    per-frame lineage tracing on, reporting the tracer's overhead
//!    plus the per-stage latency attribution (queue-wait / extract /
//!    reorder-hold / fuse p50/p95/p99) it produced.
//!
//! Every number in the JSON is host-relative: compare runs only against
//! the recorded `host_threads` (and treat `"quick": true` as smoke, not
//! benchmark, data).
//!
//! `--quick` shrinks every measurement for CI smoke use (the JSON is
//! still written, flagged with `"quick": true`).
//!
//! `--baseline FILE` compares this run's kernel numbers against a
//! previous report and exits nonzero (printing a delta table) when any
//! kernel regressed more than `--threshold FRAC` (default 0.15) on the
//! same `host_threads`. A baseline from a different host class is
//! skipped with a note, not compared — cross-host deltas are noise.
//!
//! Run with: `cargo run --release -p dievent-bench --bin perf`

use dievent_analysis::{LookAtConfig, LookAtMatrix, LookAtScratch, ParticipantPose};
use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_emotion::{
    lbp_feature_vector_into, lbp_feature_vector_reference, lbp_feature_vector_with, Emotion,
    LbpConfig, LbpScratch, Mlp, MlpBatchScratch, MlpConfig, MlpScratch,
};
use dievent_geometry::Vec3;
use dievent_pool::ThreadPool;
use dievent_scene::{render_face_patch, Scenario};
use dievent_video::GrayFrame;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    // Indices holding flag *values*, so the positional-output fallback
    // doesn't mistake `--baseline FILE` for an output path.
    let consumed: Vec<usize> = ["--out", "--baseline", "--threshold"]
        .iter()
        .filter_map(|n| args.iter().position(|a| a == *n).map(|i| i + 1))
        .collect();
    let out_path = flag_value("--out")
        .or_else(|| {
            args.iter()
                .enumerate()
                .find(|(i, a)| !a.starts_with("--") && !consumed.contains(i))
                .map(|(_, a)| a.clone())
        })
        .unwrap_or_else(|| "BENCH_9.json".to_string());
    let baseline = flag_value("--baseline");
    let threshold = flag_value("--threshold")
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(0.15);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("perf: host has {threads} hardware thread(s); quick = {quick}");

    // --- 1. End-to-end pipeline, sequential vs frame-parallel. ---
    let scenario = if quick {
        Scenario::two_camera_dinner(40, 11)
    } else {
        Scenario::prototype()
    };
    let recording = Recording::capture(scenario);
    let frames = recording.frames();
    let cameras = recording.cameras();
    // Best-of-N wall clock: single end-to-end runs jitter by ~10% on a
    // busy 1-core host, which would drown the numbers the JSON exists
    // to compare (parallel speedup, observability overhead).
    let e2e_reps = if quick { 1 } else { 3 };
    let run_fps = |config: PipelineConfig| {
        let pipeline = DiEventPipeline::new(config);
        let mut best = f64::INFINITY;
        for _ in 0..e2e_reps {
            let started = Instant::now();
            let analysis = pipeline.run(&recording).expect("pipeline run");
            let elapsed = started.elapsed().as_secs_f64();
            assert_eq!(analysis.matrices.len(), frames);
            best = best.min(elapsed);
        }
        ((frames * cameras) as f64 / best, best)
    };
    eprintln!("perf: end-to-end sequential ({cameras} cam x {frames} frames)...");
    let (seq_fps, seq_s) = run_fps(PipelineConfig {
        frame_parallel: false,
        ..PipelineConfig::default()
    });
    eprintln!("perf:   {seq_fps:.1} camera-frames/s ({seq_s:.2}s)");
    eprintln!("perf: end-to-end frame-parallel...");
    let (par_fps, par_s) = run_fps(PipelineConfig::default());
    eprintln!("perf:   {par_fps:.1} camera-frames/s ({par_s:.2}s)");
    // Same run, observed: embedded HTTP endpoint bound to a free port
    // plus the 250 ms rate sampler — the configuration a deployment
    // scraping `/metrics` would use.
    eprintln!("perf: end-to-end frame-parallel + live observability plane...");
    let (obs_fps, obs_s) = run_fps(
        PipelineConfig::builder()
            .serve_metrics("127.0.0.1:0".parse().expect("loopback addr"))
            .build()
            .expect("valid config"),
    );
    let obs_overhead = obs_s / par_s - 1.0;
    eprintln!(
        "perf:   {obs_fps:.1} camera-frames/s ({obs_s:.2}s, {:+.1}% vs unobserved)",
        obs_overhead * 100.0
    );
    // Same run with per-frame lineage tracing: every frame is stamped
    // at ingest and each stage boundary, and the final analysis carries
    // the per-stage latency attribution this section records.
    eprintln!("perf: end-to-end frame-parallel + lineage tracing...");
    let lineage_pipeline = DiEventPipeline::new(
        PipelineConfig::builder()
            .trace_lineage(true)
            .build()
            .expect("valid config"),
    );
    let mut lin_s = f64::INFINITY;
    let mut lineage = None;
    for _ in 0..e2e_reps {
        let started = Instant::now();
        let analysis = lineage_pipeline.run(&recording).expect("pipeline run");
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(analysis.matrices.len(), frames);
        if elapsed < lin_s {
            lin_s = elapsed;
            lineage = analysis.lineage;
        }
    }
    let lin_fps = (frames * cameras) as f64 / lin_s;
    let lin_overhead = lin_s / par_s - 1.0;
    let lineage = lineage.expect("lineage report from traced run");
    eprintln!(
        "perf:   {lin_fps:.1} camera-frames/s ({lin_s:.2}s, {:+.1}% vs untraced; {} frames traced)",
        lin_overhead * 100.0,
        lineage.summary.frames_traced
    );

    // --- 2. Emotion kernels: LBP vectorized vs reference, MLP scalar
    // vs batched. ---
    let patch = render_face_patch(Emotion::Happy, 225, 1, 7, 48);
    let lbp_iters = if quick { 200 } else { 2000 };
    let lbp_ns = time_per_iter(lbp_iters, || {
        let config = LbpConfig::default();
        let mut feature = Vec::new();
        let mut scratch = LbpScratch::new();
        let patch = &patch;
        move || {
            lbp_feature_vector_with(black_box(patch), &config, &mut feature, &mut scratch);
            black_box(feature.len());
        }
    });
    eprintln!("perf: lbp 48x48 descriptor (vectorized): {lbp_ns:.0} ns");
    // The clamped per-pixel oracle, same patch — the "before"-style
    // absolute number the vectorized kernel is judged against.
    let lbp_ref_iters = if quick { 50 } else { 500 };
    let lbp_ref_ns = time_per_iter(lbp_ref_iters, || {
        let config = LbpConfig::default();
        let patch = &patch;
        move || {
            black_box(lbp_feature_vector_reference(black_box(patch), &config).len());
        }
    });
    eprintln!(
        "perf: lbp 48x48 descriptor (reference oracle): {lbp_ref_ns:.0} ns ({:.2}x)",
        lbp_ref_ns / lbp_ns
    );

    // MLP forward at the production shape: 944-dim LBP feature, one
    // hidden layer, 7 emotion classes, 4 faces per frame.
    let mlp_faces = 4usize;
    let mlp_dim = LbpConfig::default().feature_len();
    let mlp = Mlp::new(MlpConfig {
        input: mlp_dim,
        hidden: vec![32],
        output: Emotion::COUNT,
        seed: 9,
    });
    let mlp_inputs: Vec<f64> = (0..mlp_faces * mlp_dim)
        .map(|i| (i as f64 * 0.37).sin())
        .collect();
    let mlp_iters = if quick { 200 } else { 5000 };
    let mlp_scalar_ns = time_per_iter(mlp_iters, || {
        let mut scratch = MlpScratch::new();
        let (mlp, inputs) = (&mlp, &mlp_inputs);
        move || {
            for s in 0..mlp_faces {
                let p = mlp.predict_proba_with(
                    black_box(&inputs[s * mlp_dim..(s + 1) * mlp_dim]),
                    &mut scratch,
                );
                black_box(p[0]);
            }
        }
    }) / mlp_faces as f64;
    let mlp_batched_ns = time_per_iter(mlp_iters, || {
        let mut scratch = MlpBatchScratch::new();
        let (mlp, inputs) = (&mlp, &mlp_inputs);
        move || {
            let p = mlp.predict_proba_batch_with(mlp_faces, black_box(&inputs[..]), &mut scratch);
            black_box(p[0]);
        }
    }) / mlp_faces as f64;
    eprintln!(
        "perf: mlp forward ({mlp_dim}->32->{}, {mlp_faces} faces): scalar {mlp_scalar_ns:.0} ns/face, \
         batched {mlp_batched_ns:.0} ns/face ({:.2}x)",
        Emotion::COUNT,
        mlp_scalar_ns / mlp_batched_ns
    );

    // --- 3. Look-at matrix ns/frame at n in {4, 8, 16}. ---
    let lookat_iters = if quick { 2_000 } else { 50_000 };
    let mut lookat_ns = [0.0_f64; 3];
    for (slot, n) in [4usize, 8, 16].into_iter().enumerate() {
        let poses = ring_poses(n);
        let config = LookAtConfig::default();
        let ns = time_per_iter(lookat_iters, || {
            let poses = poses.clone();
            let mut scratch = LookAtScratch::new();
            move || {
                let m = LookAtMatrix::from_poses_with(n, black_box(&poses), &config, &mut scratch);
                black_box(m.count_ones());
            }
        });
        eprintln!("perf: look-at n={n}: {ns:.0} ns/frame");
        lookat_ns[slot] = ns;
    }

    // --- 4. Pool scaling on a fixed LBP workload. ---
    let patches: Vec<GrayFrame> = (0..if quick { 32 } else { 256 })
        .map(|i| render_face_patch(Emotion::Neutral, 200, i % 8, i as u32, 48))
        .collect();
    let mut scaling = Vec::new();
    let mut base_ms = 0.0_f64;
    let (measured_sizes, refused_sizes) = pool_sizes(threads);
    for k in measured_sizes {
        let pool = ThreadPool::new(k);
        let config = LbpConfig::default();
        // Warm the workers up before timing.
        let _ = pool.parallel_map(&patches, |p| lbp_feature_vector_into_len(p, &config));
        let started = Instant::now();
        let reps = if quick { 2 } else { 10 };
        for _ in 0..reps {
            let lens = pool
                .parallel_map(&patches, |p| lbp_feature_vector_into_len(p, &config))
                .expect("pool map");
            black_box(lens);
        }
        let ms = started.elapsed().as_secs_f64() * 1e3 / reps as f64;
        if base_ms == 0.0 {
            base_ms = ms;
        }
        let speedup = base_ms / ms;
        eprintln!("perf: pool x{k}: {ms:.2} ms/batch (speedup {speedup:.2})");
        scaling.push(json!({ "threads": k, "ms_per_batch": ms, "speedup": speedup }));
    }
    // Honesty records: worker counts beyond the host's hardware threads
    // would only measure oversubscription, not parallel speedup.
    for k in refused_sizes {
        eprintln!(
            "perf: pool x{k}: refused — host has {threads} hardware thread(s); \
             an unmeasured speedup is not a speedup"
        );
        scaling.push(json!({
            "threads": k,
            "refused": true,
            "reason": format!(
                "host has {threads} hardware thread(s); refusing to claim an unmeasured speedup"
            ),
        }));
    }

    let stage_json = |name: &str| match lineage.summary.stage(name) {
        Some(s) => json!({
            "count": s.count,
            "mean_s": s.mean_s,
            "p50_s": s.p50_s,
            "p95_s": s.p95_s,
            "p99_s": s.p99_s,
            "max_s": s.max_s,
        }),
        None => serde_json::Value::Null,
    };
    let report = json!({
        "bench": "BENCH_9",
        "quick": quick,
        "host_threads": threads,
        "kernels": {
            "lbp_vectorized_ns_per_descriptor_48x48": lbp_ns,
            "lbp_reference_ns_per_descriptor_48x48": lbp_ref_ns,
            "lbp_speedup_vs_reference": lbp_ref_ns / lbp_ns,
            "mlp_scalar_ns_per_face": mlp_scalar_ns,
            "mlp_batched_ns_per_face": mlp_batched_ns,
            "mlp_batch_speedup": mlp_scalar_ns / mlp_batched_ns,
            "mlp_faces_per_batch": mlp_faces,
            "mlp_shape": format!("{mlp_dim}->32->{}", Emotion::COUNT),
        },
        "end_to_end": {
            "frames": frames,
            "cameras": cameras,
            "sequential_camera_fps": seq_fps,
            "sequential_seconds": seq_s,
            "frame_parallel_camera_fps": par_fps,
            "frame_parallel_seconds": par_s,
            "speedup": par_fps / seq_fps,
        },
        "observability_plane": {
            "observed_camera_fps": obs_fps,
            "observed_seconds": obs_s,
            "overhead_vs_frame_parallel": obs_overhead,
        },
        "frame_lineage": {
            "traced_camera_fps": lin_fps,
            "traced_seconds": lin_s,
            "overhead_vs_frame_parallel": lin_overhead,
            "frames_traced": lineage.summary.frames_traced,
            "frames_incomplete": lineage.summary.frames_incomplete,
            "exemplars": lineage.exemplars.len(),
            "stages": {
                "queue_wait": stage_json("queue_wait"),
                "extract": stage_json("extract"),
                "reorder_hold": stage_json("reorder_hold"),
                "fuse": stage_json("fuse"),
                "total": stage_json("total"),
            },
        },
        "lbp_ns_per_descriptor_48x48": lbp_ns,
        "lookat_ns_per_frame": {
            "4": lookat_ns[0],
            "8": lookat_ns[1],
            "16": lookat_ns[2],
        },
        "pool_scaling": scaling,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render json");
    std::fs::write(&out_path, rendered + "\n").expect("write report");
    eprintln!("perf: wrote {out_path}");

    if let Some(baseline_path) = baseline {
        if !check_baseline(&report, &baseline_path, threshold) {
            std::process::exit(1);
        }
    }
}

/// The kernel numbers the `--baseline` guard watches. Paths resolve in
/// both old (BENCH_4/6-era) and current reports; keys absent from the
/// baseline are skipped, so old baselines still guard what they have.
const GUARDED_KERNELS: &[(&str, &[&str])] = &[
    ("lbp ns/descriptor", &["lbp_ns_per_descriptor_48x48"]),
    ("lookat n=4 ns/frame", &["lookat_ns_per_frame", "4"]),
    ("lookat n=8 ns/frame", &["lookat_ns_per_frame", "8"]),
    ("lookat n=16 ns/frame", &["lookat_ns_per_frame", "16"]),
    ("mlp scalar ns/face", &["kernels", "mlp_scalar_ns_per_face"]),
    (
        "mlp batched ns/face",
        &["kernels", "mlp_batched_ns_per_face"],
    ),
];

/// Walks a dotted path into a JSON value.
fn json_f64(v: &serde_json::Value, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for p in path {
        cur = cur.get(p)?;
    }
    cur.as_f64()
}

/// Compares this run's kernels against `baseline_path`, printing a
/// delta table. Returns `false` (caller exits nonzero) when any kernel
/// regressed by more than `threshold` (fractional, e.g. 0.15 = +15%
/// slower). Mismatched `host_threads` or an unreadable baseline skip
/// the comparison with a note — those deltas would be noise, and the
/// guard refuses to fail (or pass) on numbers it can't compare.
fn check_baseline(report: &serde_json::Value, baseline_path: &str, threshold: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf: baseline {baseline_path} unreadable ({e}); skipping comparison");
            return true;
        }
    };
    let base: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perf: baseline {baseline_path} is not JSON ({e}); skipping comparison");
            return true;
        }
    };
    let base_threads = json_f64(&base, &["host_threads"]);
    let cur_threads = json_f64(report, &["host_threads"]);
    if base_threads != cur_threads {
        eprintln!(
            "perf: baseline host_threads {base_threads:?} != current {cur_threads:?}; \
             skipping comparison (cross-host deltas are noise)"
        );
        return true;
    }
    eprintln!(
        "perf: kernel deltas vs {baseline_path} (threshold +{:.0}%):",
        threshold * 100.0
    );
    eprintln!(
        "perf:   {:<22} {:>12} {:>12} {:>9}",
        "kernel", "baseline", "current", "delta"
    );
    let mut ok = true;
    for (label, path) in GUARDED_KERNELS {
        let (Some(was), Some(now)) = (json_f64(&base, path), json_f64(report, path)) else {
            continue;
        };
        let delta = now / was - 1.0;
        let regressed = delta > threshold;
        eprintln!(
            "perf:   {label:<22} {was:>10.0}ns {now:>10.0}ns {:>+8.1}%{}",
            delta * 100.0,
            if regressed { "  REGRESSED" } else { "" }
        );
        ok &= !regressed;
    }
    if !ok {
        eprintln!(
            "perf: kernel regression beyond +{:.0}% — failing",
            threshold * 100.0
        );
    }
    ok
}

/// Average nanoseconds per iteration of the closure `setup` builds.
fn time_per_iter<F: FnMut()>(iters: usize, setup: impl FnOnce() -> F) -> f64 {
    let mut f = setup();
    // Warm-up.
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn lbp_feature_vector_into_len(patch: &GrayFrame, config: &LbpConfig) -> usize {
    let mut feature = Vec::new();
    lbp_feature_vector_into(patch, config, &mut feature);
    feature.len()
}

/// Participants on a circle, each gazing at the participant opposite —
/// a dense workload where most rays pass near several heads.
fn ring_poses(n: usize) -> Vec<ParticipantPose> {
    (0..n)
        .map(|i| {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            let head = Vec3::new(a.cos() * 1.2, a.sin() * 1.2, 1.1);
            let target_a = (i + n / 2) as f64 / n as f64 * std::f64::consts::TAU;
            let target = Vec3::new(target_a.cos() * 1.2, target_a.sin() * 1.2, 1.1);
            ParticipantPose {
                person: i,
                head,
                gaze: Some((target - head).normalized()),
                support: 1,
            }
        })
        .collect()
}

/// The scaling ladder 1/2/4/8 (plus the host's own thread count),
/// split into (measurable, refused): counts beyond the host's hardware
/// threads are never measured — they'd record oversubscription and get
/// labelled a "speedup".
fn pool_sizes(max: usize) -> (Vec<usize>, Vec<usize>) {
    let ladder = [1usize, 2, 4, 8];
    let mut measured: Vec<usize> = ladder.iter().copied().filter(|&k| k <= max).collect();
    if !measured.contains(&max) {
        measured.push(max);
        measured.sort_unstable();
    }
    let refused = ladder.iter().copied().filter(|&k| k > max).collect();
    (measured, refused)
}
