//! Benchmark support for the DiEvent reproduction.
//!
//! The Criterion benches under `benches/` regenerate every evaluation
//! artifact of the paper (Figures 2–9) and the ablations DESIGN.md
//! calls out. This library holds the shared workload builders and
//! measurement helpers so the bench files stay declarative.
//!
//! Two kinds of output are produced:
//!
//! * **figure rows** — printed to stderr before timing begins, showing
//!   the reproduced values next to the paper's (shape comparison);
//! * **Criterion timings** — the cost of the code path that produces
//!   each figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dievent_analysis::{validate_sequence, LookAtConfig, LookAtMatrix, MatrixValidation};
use dievent_geometry::{Mat3, Vec3};
use dievent_scene::{GroundTruth, Scenario};

/// Builds per-frame look-at matrices from ground truth with synthetic
/// gaze noise: every gaze direction is rotated by `sigma_deg` (RMS,
/// deterministic direction pattern) before the ray–sphere test — a
/// model of the estimation error a vision front-end introduces.
pub fn noisy_matrices(
    gt: &GroundTruth,
    sigma_deg: f64,
    radius: f64,
    seed: u64,
) -> Vec<LookAtMatrix> {
    let cfg = LookAtConfig {
        attention_radius: radius,
        ..LookAtConfig::default()
    };
    noisy_matrices_with(gt, sigma_deg, &cfg, seed)
}

/// Like [`noisy_matrices`] but with an arbitrary [`LookAtConfig`] —
/// used by the criterion ablation (sphere vs cone).
pub fn noisy_matrices_with(
    gt: &GroundTruth,
    sigma_deg: f64,
    cfg: &LookAtConfig,
    seed: u64,
) -> Vec<LookAtMatrix> {
    let sigma = sigma_deg.to_radians();
    gt.snapshots
        .iter()
        .enumerate()
        .map(|(f, snap)| {
            let poses: Vec<dievent_analysis::ParticipantPose> = snap
                .states
                .iter()
                .enumerate()
                .map(|(i, st)| {
                    let gaze = if sigma > 0.0 {
                        Some(perturb(st.gaze, sigma, seed ^ (f as u64) << 8 ^ i as u64))
                    } else {
                        Some(st.gaze)
                    };
                    dievent_analysis::ParticipantPose {
                        person: i,
                        head: st.head,
                        gaze,
                        support: 1,
                    }
                })
                .collect();
            LookAtMatrix::from_poses(snap.states.len(), &poses, cfg)
        })
        .collect()
}

/// Deterministically rotates `dir` by an angle of RMS magnitude `sigma`
/// about a pseudo-random axis derived from `salt`.
pub fn perturb(dir: Vec3, sigma: f64, salt: u64) -> Vec3 {
    let h1 = splitmix(salt);
    let h2 = splitmix(h1);
    let h3 = splitmix(h2);
    // Angle from an approximate normal (sum of uniforms), scaled to RMS sigma.
    let u = |h: u64| (h >> 11) as f64 / (1u64 << 53) as f64;
    // Sum of three uniforms scaled to zero mean, unit variance.
    let angle = sigma * ((u(h1) + u(h2) + u(h3)) * 2.0 - 3.0);
    // Axis orthogonal-ish to dir.
    let raw_axis = Vec3::new(u(h2) - 0.5, u(h3) - 0.5, u(h1) - 0.5);
    let axis = raw_axis
        .reject_from(dir)
        .try_normalized()
        .unwrap_or(Vec3::Z);
    (Mat3::rotation_axis_angle(axis, angle) * dir).normalized()
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Ground-truth matrices at the given radius (no noise).
pub fn truth_matrices(gt: &GroundTruth, radius: f64) -> Vec<LookAtMatrix> {
    noisy_matrices(gt, 0.0, radius, 0)
}

/// *Intended* (scripted) matrices of a scenario.
pub fn intended_matrices(scenario: &Scenario) -> Vec<LookAtMatrix> {
    let n = scenario.participants.len();
    (0..scenario.frames())
        .map(|f| {
            let rows = scenario.schedule.lookat_matrix(f);
            let mut m = LookAtMatrix::zero(n);
            for (g, row) in rows.iter().enumerate() {
                for (t, &v) in row.iter().enumerate() {
                    if g != t && v == 1 {
                        m.set(g, t, 1);
                    }
                }
            }
            m
        })
        .collect()
}

/// F1 of `detected` against `truth`.
pub fn f1(detected: &[LookAtMatrix], truth: &[LookAtMatrix]) -> MatrixValidation {
    validate_sequence(detected, truth)
}

/// Prints one labelled row of a figure table to stderr.
pub fn row(figure: &str, label: &str, value: impl std::fmt::Display) {
    eprintln!("[{figure}] {label}: {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_matches_truth() {
        let s = Scenario::two_camera_dinner(50, 1);
        let gt = s.simulate();
        let a = noisy_matrices(&gt, 0.0, 0.3, 1);
        let b = truth_matrices(&gt, 0.3);
        assert_eq!(a, b);
        let v = f1(&a, &b);
        assert_eq!(v.f1, 1.0);
    }

    #[test]
    fn noise_degrades_f1_monotonically_in_expectation() {
        let s = Scenario::prototype();
        let gt = GroundTruth {
            snapshots: s.simulate().snapshots.into_iter().take(150).collect(),
        };
        let truth = truth_matrices(&gt, 0.3);
        let f_small = f1(&noisy_matrices(&gt, 2.0, 0.3, 9), &truth).f1;
        let f_large = f1(&noisy_matrices(&gt, 15.0, 0.3, 9), &truth).f1;
        assert!(f_small > f_large, "2° {f_small} vs 15° {f_large}");
        assert!(f_small > 0.9);
    }

    #[test]
    fn perturb_angle_statistics() {
        let mut sum_sq = 0.0;
        let n = 2000;
        for k in 0..n {
            let p = perturb(Vec3::X, 0.1, k as u64);
            let a = p.angle_to(Vec3::X);
            sum_sq += a * a;
            assert!((p.norm() - 1.0).abs() < 1e-9);
        }
        let rms = (sum_sq / n as f64).sqrt();
        assert!((rms - 0.1).abs() < 0.02, "rms = {rms}");
    }

    #[test]
    fn intended_matches_schedule_counts() {
        let s = Scenario::prototype();
        let mats = intended_matrices(&s);
        let total: u32 = mats.iter().map(|m| m.count_ones() as u32).sum();
        let scripted: u32 = s.schedule.summary_matrix().iter().flatten().sum();
        assert_eq!(total, scripted);
    }
}
