//! The headline reproduction test: the paper's §III prototype —
//! 4 participants, 4 corner cameras, 610 frames / 40 s — through the
//! complete pixel pipeline, asserting the published Figure 7, 8 and 9
//! results.
//!
//! This is the expensive test of the suite (it renders and analyzes
//! 2440 camera frames); emotion classification and video parsing are
//! disabled here because the figures only concern the gaze layer.

use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::Scenario;

fn run_prototype() -> (Scenario, dievent_core::EventAnalysis) {
    let scenario = Scenario::prototype();
    let recording = Recording::capture(scenario.clone());
    let pipeline = DiEventPipeline::new(PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    });
    let analysis = pipeline.run(&recording).expect("pipeline run");
    (scenario, analysis)
}

#[test]
fn figures_7_8_9_reproduce() {
    let (scenario, analysis) = run_prototype();
    let (p1, p2, p3, p4) = (0usize, 1usize, 2usize, 3usize);

    // --- Figure 7 (t = 10 s): green↔yellow mutual, black→blue,
    //     blue→green. ---
    let m10 = analysis.matrix_at(10.0).expect("frame at 10 s");
    assert_eq!(m10.get(p1, p3), 1, "yellow → green");
    assert_eq!(m10.get(p3, p1), 1, "green → yellow");
    assert_eq!(m10.get(p4, p2), 1, "black → blue");
    assert_eq!(m10.get(p2, p3), 1, "blue → green");
    assert!(
        m10.eye_contacts().contains(&(p1, p3)),
        "Fig. 7 eye contact between yellow and green"
    );

    // --- Figure 8 (t = 15 s): green, blue, black → yellow. ---
    let m15 = analysis.matrix_at(15.0).expect("frame at 15 s");
    for gazer in [p2, p3, p4] {
        assert_eq!(m15.get(gazer, p1), 1, "P{} → yellow at t = 15 s", gazer + 1);
    }

    // --- Figure 9: summary matrix over 610 frames. ---
    assert_eq!(analysis.matrices.len(), 610, "the paper's frame count");
    let s = &analysis.summary;
    // Diagonal zero.
    for i in 0..4 {
        assert_eq!(s.get(i, i), 0);
    }
    // (P1→P3) is the largest single entry and close to the paper's 357.
    let max_cell = (0..4)
        .flat_map(|g| (0..4).map(move |t| ((g, t), s.get(g, t))))
        .max_by_key(|&(_, v)| v)
        .expect("non-empty");
    assert_eq!(max_cell.0, (p1, p3), "(P1→P3) must be the maximum cell");
    let detected = s.get(p1, p3) as f64;
    assert!(
        (detected - 357.0).abs() / 357.0 < 0.15,
        "(P1→P3) = {detected}, paper prints 357 (±15%)"
    );
    // P1's column sum is the maximum: P1 is the dominant participant.
    let received: Vec<u32> = (0..4).map(|p| s.received(p)).collect();
    assert!(
        (1..4).all(|p| received[0] > received[p]),
        "P1 must dominate: {received:?}"
    );
    assert_eq!(analysis.dominance.dominant, Some(p1));

    // --- Overall detection fidelity. ---
    assert!(
        analysis.validation.f1 > 0.85,
        "look-at F1 vs ground truth too low: {:?}",
        analysis.validation
    );
    assert!(
        analysis.validation.precision > 0.9,
        "precision too low: {:?}",
        analysis.validation
    );

    // The scripted summary equals the paper's construction exactly.
    let scripted = scenario.schedule.summary_matrix();
    assert_eq!(scripted[p1][p3], 357);
}

#[test]
fn prototype_eye_contact_episodes_follow_the_script() {
    let (scenario, analysis) = run_prototype();
    // Mutual P1↔P3 gaze is scripted in the Fig. 7 window; a detected EC
    // episode must cover t = 10 s.
    let t10 = (10.0 * scenario.spec.fps).round() as usize;
    let covered = analysis
        .episodes
        .iter()
        .any(|e| e.a == 0 && e.b == 2 && e.start <= t10 && t10 < e.end);
    assert!(covered, "episodes: {:?}", analysis.episodes);
}
