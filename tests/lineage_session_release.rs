//! Regression test: a lineage-traced observed session that is dropped
//! *without* `finish()` must release everything the tracer touched —
//! the plane's lineage slot (which pins the waterfall reservoir and
//! in-flight table), the sampler/HTTP threads, and the private pool's
//! workers. A leak here is easy to introduce: the plane holds a tracer
//! clone so `/lineage` can serve mid-run, and clearing that slot on
//! shutdown is the only thing standing between "session dropped" and
//! "reservoir pinned for as long as any probe lives".
//!
//! Lives in its own integration-test binary: the assertions count OS
//! threads by name via `/proc/self/task`, which only stays
//! deterministic when no sibling test spins up pools in the same
//! process.

#![cfg(target_os = "linux")]

use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::Scenario;
use std::time::{Duration, Instant};

/// Counts this process's live threads named `dievent-pool-*` (worker
/// names are truncated to 15 bytes in `comm`, which still covers the
/// prefix) — real OS threads, not a counter the code under test keeps.
fn pool_worker_threads() -> usize {
    let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            std::fs::read_to_string(e.path().join("comm"))
                .is_ok_and(|comm| comm.trim_end().starts_with("dievent-pool"))
        })
        .count()
}

#[test]
fn dropping_a_traced_session_frees_lineage_buffers_and_threads() {
    let recording = Recording::capture(Scenario::two_camera_dinner(40, 9));
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .pool_threads(2)
        .trace_lineage(true)
        .serve_metrics("127.0.0.1:0".parse().expect("loopback"))
        .sample_interval(Duration::from_millis(20))
        .build()
        .expect("valid config");
    let before = pool_worker_threads();
    let pipeline = DiEventPipeline::new(config);
    let mut session = pipeline.session(&recording.scenario).expect("session");
    let probe = session.observer().expect("plane").probe();
    assert!(probe.lineage_attached(), "tracer attached while running");

    // Put real entries in the tracer's in-flight table and reservoir
    // before abandoning the session.
    for f in 0..10 {
        for c in 0..recording.cameras() {
            session.push_frame(c, recording.frame(c, f)).expect("push");
        }
    }
    session.poll();
    assert!(pool_worker_threads() > before, "private pool is running");

    // Abandon the session without `finish()`. The plane's shutdown
    // must clear the lineage slot — the probe outlives the session, so
    // a slot left populated would pin the tracer's waterfall reservoir
    // for as long as this handle exists.
    drop(session);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe.is_shutdown() || probe.threads_alive() != 0 {
        assert!(
            Instant::now() < deadline,
            "plane threads leaked after traced-session drop"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        !probe.lineage_attached(),
        "lineage tracer still pinned by the plane after shutdown"
    );
    while pool_worker_threads() > before {
        assert!(
            Instant::now() < deadline,
            "private pool workers leaked after traced-session drop"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
