//! The streaming engine's contract: a `PipelineSession` fed
//! incrementally must reproduce the batch pipeline exactly, and its
//! bounded channels must behave per the configured backpressure policy
//! (blocking loses nothing; drop-oldest sheds load and accounts for
//! every shed frame in telemetry).

use dievent_core::{BackpressureMode, DiEventPipeline, FinishOptions, PipelineConfig, Recording};
use dievent_scene::Scenario;

/// Streaming run of the paper's §III prototype — four cameras pushed
/// from four independent producer threads — must match the batch
/// entry point bit for bit: same matrices, same Fig. 7/8 look-at sets,
/// same summary/dominance/validation.
#[test]
fn streaming_prototype_equals_batch() {
    let scenario = Scenario::prototype();
    let recording = Recording::capture(scenario.clone());
    let frames = recording.frames();
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        // A window wider than the recording: producers may skew freely
        // without the sequencer ever fusing an incomplete frame.
        .reorder_window(frames)
        .build()
        .expect("valid config");

    let pipeline = DiEventPipeline::new(config);
    let batch = pipeline.run(&recording).expect("batch run");

    let mut session = pipeline.session(&recording.scenario).expect("session");
    let feeds = session.take_feeds().expect("feeds");
    std::thread::scope(|s| {
        for mut feed in feeds {
            let recording = &recording;
            s.spawn(move || {
                let camera = feed.camera().index();
                for f in 0..frames {
                    feed.push(recording.frame(camera, f)).expect("push");
                }
            });
        }
    });
    let streamed = session
        .finish_with(FinishOptions {
            ground_truth: recording.lookat_truth(&config.lookat),
            context: None,
        })
        .expect("streaming finish");

    assert_eq!(streamed.raw_matrices, batch.raw_matrices);
    assert_eq!(streamed.matrices, batch.matrices);
    assert_eq!(streamed.summary.rows(), batch.summary.rows());
    assert_eq!(streamed.dominance, batch.dominance);
    assert_eq!(streamed.episodes, batch.episodes);
    assert_eq!(streamed.pair_stats, batch.pair_stats);
    assert_eq!(streamed.importance, batch.importance);
    // Fig. 7 (t = 10 s) and Fig. 8 (t = 15 s) look-at sets.
    for t in [10.0, 15.0] {
        assert_eq!(
            streamed.matrix_at(t).expect("frame"),
            batch.matrix_at(t).expect("frame"),
            "look-at matrix at t = {t} s"
        );
    }
    assert_eq!(streamed.validation, batch.validation);
    assert!(streamed.validation.f1 > 0.85, "{:?}", streamed.validation);
}

/// Blocking backpressure on a capacity-1 channel: producers outrun the
/// extractors by orders of magnitude, yet nothing may be lost.
#[test]
fn blocking_backpressure_loses_nothing() {
    const PUSHES: usize = 60;
    let recording = Recording::capture(Scenario::two_camera_dinner(PUSHES, 11));
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .channel_capacity(1)
        .backpressure(BackpressureMode::Block)
        .build()
        .expect("valid config");
    let pipeline = DiEventPipeline::new(config);
    let mut session = pipeline.session(&recording.scenario).expect("session");
    for f in 0..PUSHES {
        for c in 0..recording.cameras() {
            session.push_frame(c, recording.frame(c, f)).expect("push");
        }
    }
    let analysis = session.finish().expect("finish");
    assert_eq!(analysis.matrices.len(), PUSHES, "no frame may be lost");
    let report = &analysis.telemetry;
    assert_eq!(report.counter_total("session.frames_dropped"), 0);
    for c in 0..recording.cameras() {
        assert_eq!(
            report.counter(&format!("frames_processed{{camera=\"{c}\"}}")),
            Some(PUSHES as u64),
            "camera {c} must process every push"
        );
    }
}

/// Drop-oldest backpressure on a capacity-1 channel: a producer pushing
/// far faster than extraction must shed load, every shed frame must be
/// counted, and the conservation law `processed + dropped == pushed`
/// must hold exactly per camera.
#[test]
fn drop_oldest_sheds_load_and_accounts_for_every_frame() {
    const PUSHES: usize = 200;
    let recording = Recording::capture(Scenario::two_camera_dinner(4, 11));
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .channel_capacity(1)
        .backpressure(BackpressureMode::DropOldest)
        .build()
        .expect("valid config");
    let pipeline = DiEventPipeline::new(config);
    let mut session = pipeline.session(&recording.scenario).expect("session");
    let frames: Vec<_> = (0..recording.cameras())
        .map(|c| recording.frame(c, 0))
        .collect();
    for _ in 0..PUSHES {
        for (c, frame) in frames.iter().enumerate() {
            session.push_frame(c, frame.clone()).expect("push");
        }
    }
    let analysis = session.finish().expect("finish");
    let report = &analysis.telemetry;

    let dropped_total = report.counter_total("session.frames_dropped");
    assert!(
        dropped_total > 0,
        "a capacity-1 queue under instant pushes must shed load"
    );
    for c in 0..recording.cameras() {
        let processed = report
            .counter(&format!("frames_processed{{camera=\"{c}\"}}"))
            .unwrap_or(0);
        let dropped = report
            .counter(&format!("session.frames_dropped{{camera=\"{c}\"}}"))
            .unwrap_or(0);
        assert_eq!(
            processed + dropped,
            PUSHES as u64,
            "camera {c}: processed {processed} + dropped {dropped} != pushed {PUSHES}"
        );
    }
    // The streaming gauges are populated.
    for c in 0..recording.cameras() {
        assert!(
            report
                .gauge(&format!("session.queue_depth{{camera=\"{c}\"}}"))
                .is_some(),
            "queue-depth gauge for camera {c}"
        );
    }
    assert!(
        report.gauge("session.reorder_occupancy").is_some(),
        "reorder-window occupancy gauge"
    );
}

/// Camera arrival order inside the reorder window must not affect the
/// output: feeding camera 1's whole stream before camera 0's produces
/// the same matrices as strict interleaving.
#[test]
fn camera_skew_within_reorder_window_is_invisible() {
    const FRAMES: usize = 20;
    let recording = Recording::capture(Scenario::two_camera_dinner(FRAMES, 3));
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .parallel_cameras(false) // inline: deterministic ordering
        .reorder_window(FRAMES)
        .build()
        .expect("valid config");
    let pipeline = DiEventPipeline::new(config);

    let mut interleaved = pipeline.session(&recording.scenario).expect("session");
    for f in 0..FRAMES {
        for c in 0..2 {
            interleaved
                .push_frame(c, recording.frame(c, f))
                .expect("push");
        }
    }
    let a = interleaved.finish().expect("finish");

    let mut skewed = pipeline.session(&recording.scenario).expect("session");
    for c in [1, 0] {
        for f in 0..FRAMES {
            skewed.push_frame(c, recording.frame(c, f)).expect("push");
        }
    }
    let b = skewed.finish().expect("finish");

    assert_eq!(a.raw_matrices, b.raw_matrices);
    assert_eq!(a.matrices, b.matrices);
    assert_eq!(a.summary.rows(), b.summary.rows());
}

/// Skew beyond the reorder window forces evictions: frames fuse without
/// the laggard camera, the eviction counter records it, and late
/// arrivals never resurrect an already-fused frame (each index is
/// emitted exactly once, in order).
#[test]
fn skew_beyond_reorder_window_evicts_without_duplicates() {
    const FRAMES: usize = 20;
    const WINDOW: usize = 2;
    let recording = Recording::capture(Scenario::two_camera_dinner(FRAMES, 3));
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .parallel_cameras(false) // inline: deterministic ordering
        .reorder_window(WINDOW)
        .build()
        .expect("valid config");
    let pipeline = DiEventPipeline::new(config);
    let mut session = pipeline.session(&recording.scenario).expect("session");

    let mut emitted = Vec::new();
    // Camera 1 races a full recording ahead of camera 0.
    for c in [1, 0] {
        for f in 0..FRAMES {
            session.push_frame(c, recording.frame(c, f)).expect("push");
            emitted.extend(session.poll());
        }
    }
    let analysis = session.finish().expect("finish");
    assert_eq!(analysis.matrices.len(), FRAMES);

    let frames: Vec<usize> = emitted.iter().map(|e| e.frame).collect();
    let mut sorted = frames.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(frames, sorted, "frames must be unique and ascending");
    assert!(
        emitted.iter().any(|e| e.cameras_reporting == 1),
        "evicted frames fuse with one camera"
    );
    let report = &analysis.telemetry;
    assert!(report.counter("session.reorder_evictions").unwrap_or(0) > 0);
    assert!(report.counter("session.late_arrivals").unwrap_or(0) > 0);
}

/// Pre-extracted pose observations (an external tracker) drive the
/// session end to end without touching the pixel path.
#[test]
fn pose_observation_stream_produces_full_analysis() {
    use dievent_analysis::CameraObservation;
    let scenario = Scenario::two_camera_dinner(30, 5);
    let truth = scenario.simulate();
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .build()
        .expect("valid config");
    let pipeline = DiEventPipeline::new(config);
    let mut session = pipeline.session(&scenario).expect("session");
    for snap in &truth.snapshots {
        for (c, cam) in scenario.rig.cameras.iter().enumerate() {
            let to_cam = cam.extrinsics();
            let obs: Vec<CameraObservation> = snap
                .states
                .iter()
                .enumerate()
                .map(|(person, st)| CameraObservation {
                    person,
                    head_cam: to_cam.transform_point(st.head),
                    gaze_cam: Some(to_cam.transform_dir(st.gaze)),
                    weight: 1.0,
                })
                .collect();
            session.push_pose_observations(c, obs).expect("push");
        }
    }
    let analysis = session.finish().expect("finish");
    assert_eq!(analysis.matrices.len(), truth.snapshots.len());
    let looks: usize = analysis.matrices.iter().map(|m| m.count_ones()).sum();
    assert!(looks > 0, "ground-truth poses must register looks");
}
