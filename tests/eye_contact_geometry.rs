//! End-to-end verification of the paper's eye-contact mathematics
//! (§II-D-1, Eq. 1–5) across crates: reference frames (Eq. 1–2),
//! rendered pixels, vision decoding, and the ray–sphere test (Eq. 3–5)
//! must agree with the scripted ground truth.

use dievent_core::Recording;
use dievent_geometry::{FrameGraph, Iso3, Ray, Sphere, Vec3};
use dievent_scene::{GazeTarget, Scenario};
use dievent_vision::{
    detect_faces, estimate_pose, locate_landmarks, DetectorConfig, LandmarkConfig, PoseConfig,
};

/// The paper's Eq. 2 chain — `¹V_l = ¹T₂ · ²T₄ · ⁴V_l` — implemented
/// with the frame graph, against direct world-frame computation.
#[test]
fn equation_2_chain_equals_direct_transform() {
    let scenario = Scenario::two_camera_dinner(4, 1);
    let c1 = scenario.rig.cameras[0];
    let c2 = scenario.rig.cameras[1];

    let mut g = FrameGraph::new();
    let world = g.add_root("world");
    let f1 = g.add_frame("F1", world, c1.pose).unwrap();
    let f2 = g.add_frame("F2", world, c2.pose).unwrap();
    // P2's head frame expressed in F2 (²F₄ in the paper's notation).
    let head_world = scenario.participants[1].seat_head;
    let head_in_c2 = c2.extrinsics().transform_point(head_world);
    let f4 = g
        .add_frame("2F4", f2, Iso3::from_translation(head_in_c2))
        .unwrap();

    // A gaze vector expressed in the head frame (aligned with F2 here).
    let v4 = Vec3::new(0.2, -0.1, -0.97).normalized();

    // Chain: ¹T₂ · ²T₄ applied to ⁴V.
    let t12 = g.transform(f1, f2).unwrap();
    let t24 = g.transform(f2, f4).unwrap();
    let chained = (t12 * t24).transform_dir(v4);
    // Graph shortcut: ¹T₄ directly.
    let direct = g.transform_dir(f1, f4, v4).unwrap();
    assert!(chained.approx_eq(direct, 1e-9));

    // And a world-frame detour gives the same vector expressed in F1.
    let world_v = c2.pose.transform_dir(v4);
    let via_world = c1.extrinsics().transform_dir(world_v);
    assert!(chained.approx_eq(via_world, 1e-9));
}

/// Full Fig. 6 scenario: person seen by camera A gazes at a person seen
/// by camera B; decoding A's pixels and testing Eq. 5 in the common
/// frame detects the look — and detects its absence when the gaze moves
/// away.
#[test]
fn pixels_to_eye_contact_decision() {
    let scenario = Scenario::two_camera_dinner(80, 5);
    let recording = Recording::capture(scenario.clone());

    let mut decided_looking = 0;
    let mut decided_not = 0;
    let mut scripted_looking = 0;
    let mut scripted_not = 0;

    for f in 10..recording.frames() {
        let snap = &recording.ground_truth.snapshots[f];
        // P1 (index 0) faces +X; the camera behind P2 (camera index 1)
        // sees P1's face.
        let cam = scenario.rig.cameras[1];
        let frame = recording.frame(1, f);
        let dets = detect_faces(&frame, &DetectorConfig::default());
        let Some(proj) = cam.project(snap.states[0].head) else {
            continue;
        };
        let Some(det) = dets
            .iter()
            .find(|d| (d.cx - proj.pixel.x).hypot(d.cy - proj.pixel.y) < 12.0)
        else {
            continue;
        };
        // When no gaze can be decoded (face turned/tilted away), the
        // pipeline registers "not looking" — that IS the decision.
        let pose = locate_landmarks(&frame, det, &LandmarkConfig::default())
            .and_then(|lm| estimate_pose(det, &lm, &cam, &PoseConfig::default()));
        let looking = match pose {
            Some(pose) => {
                // Eq. 5 in the world frame.
                let origin = cam.pose.transform_point(pose.head_cam);
                let dir = cam.pose.transform_dir(pose.gaze_cam);
                let sphere = Sphere::new(snap.states[1].head, 0.30);
                sphere.is_hit_by(&Ray::new(origin, dir))
            }
            None => false,
        };

        // Compare against the script, skipping the head-turn transient
        // after a target change.
        let stable = (f.saturating_sub(8)..=f)
            .all(|k| scenario.schedule.target(0, k) == scenario.schedule.target(0, f));
        if !stable {
            continue;
        }
        match scenario.schedule.target(0, f) {
            GazeTarget::Person(1) => {
                scripted_looking += 1;
                if looking {
                    decided_looking += 1;
                }
            }
            _ => {
                scripted_not += 1;
                if !looking {
                    decided_not += 1;
                }
            }
        }
    }

    assert!(
        scripted_looking > 10,
        "script must exercise the looking case"
    );
    assert!(
        scripted_not > 5,
        "script must exercise the not-looking case"
    );
    let recall = decided_looking as f64 / scripted_looking as f64;
    let tnr = decided_not as f64 / scripted_not as f64;
    assert!(
        recall > 0.85,
        "looking-at recall {recall} ({decided_looking}/{scripted_looking})"
    );
    assert!(
        tnr > 0.85,
        "not-looking specificity {tnr} ({decided_not}/{scripted_not})"
    );
}

/// The discriminant sign convention of Eq. 5 as stated in the paper:
/// `w ∈ ℝ⁺` ⇒ two intersection points ⇒ looking; tangency or miss ⇒
/// not looking.
#[test]
fn equation_5_sign_convention() {
    let head = Sphere::new(Vec3::new(2.0, 0.0, 1.2), 0.3);
    let looking = Ray::new(Vec3::new(0.0, 0.0, 1.2), Vec3::X);
    let grazing = Ray::new(Vec3::new(0.0, 0.3, 1.2), Vec3::X);
    let missing = Ray::new(Vec3::new(0.0, 1.0, 1.2), Vec3::X);

    assert!(head.discriminant(&looking) > 0.0);
    assert!(head.discriminant(&grazing).abs() < 1e-9);
    assert!(head.discriminant(&missing) < 0.0);

    assert!(head.is_hit_by(&looking));
    assert!(!head.is_hit_by(&grazing), "tangent counts as not looking");
    assert!(!head.is_hit_by(&missing));
}
