//! Regression test: an observed session with a *private* thread pool
//! must release the pool's worker threads when it is dropped. The
//! session's heartbeat callback captures a pool handle; if the plane
//! kept that callback alive past shutdown (as an owned-probe cycle
//! once did), the last handle would never drop and the workers would
//! park forever.
//!
//! Lives in its own integration-test binary: the assertions count OS
//! threads by name via `/proc/self/task`, which only stays
//! deterministic when no sibling test spins up pools in the same
//! process.

#![cfg(target_os = "linux")]

use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::Scenario;
use std::time::{Duration, Instant};

/// Counts this process's live threads named `dievent-pool-*` (worker
/// names are truncated to 15 bytes in `comm`, which still covers the
/// prefix) — real OS threads, not a counter the code under test keeps.
fn pool_worker_threads() -> usize {
    let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            std::fs::read_to_string(e.path().join("comm"))
                .is_ok_and(|comm| comm.trim_end().starts_with("dievent-pool"))
        })
        .count()
}

#[test]
fn dropping_an_observed_session_frees_its_private_pool_workers() {
    let recording = Recording::capture(Scenario::two_camera_dinner(30, 3));
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .pool_threads(2)
        .serve_metrics("127.0.0.1:0".parse().expect("loopback"))
        .sample_interval(Duration::from_millis(20))
        .build()
        .expect("valid config");
    let before = pool_worker_threads();
    let pipeline = DiEventPipeline::new(config);
    let mut session = pipeline.session(&recording.scenario).expect("session");
    for c in 0..recording.cameras() {
        session.push_frame(c, recording.frame(c, 0)).expect("push");
    }
    assert!(pool_worker_threads() > before, "private pool is running");

    // Abandon the session without `finish()`. The plane's Drop clears
    // the heartbeat (releasing its pool handle), the camera workers
    // exit as their feeds disconnect (releasing theirs), and the last
    // handle shuts the pool down. Workers exit on their next wake-up,
    // so poll with a deadline rather than asserting instantly.
    drop(session);
    let deadline = Instant::now() + Duration::from_secs(5);
    while pool_worker_threads() > before {
        assert!(
            Instant::now() < deadline,
            "private pool workers leaked after session drop"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
