//! Integration tests for the live observability plane: a streaming
//! session serving `/metrics`, `/healthz`, `/readyz`, `/snapshot`, and
//! `/profile` over its embedded HTTP endpoint *while frames flow*, the
//! windowed-rate trajectory attached to the final report, and the
//! no-leaked-threads guarantee when a session is dropped without
//! `finish()`.

use dievent_core::{validate_exposition, DiEventPipeline, PipelineConfig, Recording};
use dievent_scene::Scenario;
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::time::Duration;

/// Minimal HTTP/1.1 GET: returns (status code, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn observed_config() -> PipelineConfig {
    PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .serve_metrics("127.0.0.1:0".parse().expect("loopback"))
        .sample_interval(Duration::from_millis(20))
        .build()
        .expect("valid config")
}

#[test]
fn endpoints_answer_mid_run_and_report_carries_rate_windows() {
    let recording = Recording::capture(Scenario::two_camera_dinner(120, 7));
    let frames = recording.frames();
    let pipeline = DiEventPipeline::new(observed_config());
    let mut session = pipeline.session(&recording.scenario).expect("session");

    let plane = session.observer().expect("plane is active");
    let addr = plane.local_addr().expect("endpoint bound");
    let probe = plane.probe();
    assert!(probe.threads_alive() > 0, "sampler + server running");

    // Stream the first half, paced across several sampler ticks so the
    // windows observe genuinely mid-run rates.
    for f in 0..frames / 2 {
        for c in 0..recording.cameras() {
            session.push_frame(c, recording.frame(c, f)).expect("push");
        }
        if f % 10 == 9 {
            std::thread::sleep(Duration::from_millis(15));
        }
    }
    session.poll();
    std::thread::sleep(Duration::from_millis(60));

    // --- Health + readiness, mid-run. ---
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "healthz: {body}");
    let (status, _) = http_get(addr, "/readyz");
    assert_eq!(status, 200, "mid-run session must be ready");

    // --- /metrics: valid exposition with live per-camera counters and
    // the heartbeat's session/pool gauges. ---
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let stats = validate_exposition(&metrics).expect("exposition is conformant");
    assert!(stats.samples > 10 && stats.families > 5, "{stats:?}");
    for needle in [
        "dievent_frames_processed_total{camera=\"0\"}",
        "dievent_frames_processed_total{camera=\"1\"}",
        "dievent_session_uptime_s",
        "dievent_session_watermark_frame",
        "dievent_session_camera_alive{camera=\"0\"} 1",
        "dievent_pool_threads",
        "dievent_pool_queue_depth",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    // --- /snapshot: windowed frames/s must be nonzero mid-run. ---
    let (status, snapshot) = http_get(addr, "/snapshot?window=100");
    assert_eq!(status, 200);
    let value: serde_json::Value = serde_json::from_str(&snapshot).expect("snapshot is JSON");
    assert!(
        value
            .get("uptime_s")
            .and_then(|v| v.as_f64())
            .expect("uptime")
            > 0.0
    );
    let windows = value
        .get("windows")
        .and_then(|v| v.as_array())
        .expect("windows array");
    assert!(!windows.is_empty(), "sampler has produced windows");
    let frame_rate = windows
        .iter()
        .flat_map(|w| {
            w.get("rates")
                .and_then(|r| r.as_array())
                .into_iter()
                .flatten()
        })
        .filter(|r| {
            r.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| n.starts_with("frames_processed"))
        })
        .filter_map(|r| r.get("per_second").and_then(|v| v.as_f64()))
        .fold(0.0_f64, f64::max);
    assert!(
        frame_rate > 0.0,
        "some window must show nonzero frames/s:\n{snapshot}"
    );

    // --- /profile: collapsed stacks of the live span tree. ---
    let (status, profile) = http_get(addr, "/profile");
    assert_eq!(status, 200);
    let lines: Vec<&str> = profile.lines().collect();
    assert!(lines.len() >= 3, "profile too small:\n{profile}");
    assert!(profile.contains("camera.extract"), "{profile}");
    for line in &lines {
        let (stack, self_us) = line.rsplit_once(' ').expect("stack + value");
        assert!(!stack.is_empty());
        self_us.parse::<u64>().expect("integer microseconds");
    }

    // --- Unknown path. ---
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);

    // Stream the rest and finish: readiness must have flipped to 503
    // *before* the endpoint closed, the plane's threads must be gone,
    // and the report must carry the windowed trajectory.
    for f in frames / 2..frames {
        for c in 0..recording.cameras() {
            session.push_frame(c, recording.frame(c, f)).expect("push");
        }
    }
    let analysis = session.finish().expect("finish");
    assert_eq!(analysis.matrices.len(), frames);
    assert_eq!(probe.threads_alive(), 0, "plane threads joined at finish");
    assert!(probe.is_shutdown());
    assert_eq!(
        probe.ready_when_closed(),
        Some(false),
        "readiness must drop before the listener closes"
    );
    assert!(!analysis.rate_windows.is_empty());
    let streamed: u64 = analysis
        .rate_windows
        .iter()
        .map(|w| w.delta_total("frames_processed"))
        .sum();
    assert!(streamed > 0, "windows must have seen frames flow");
}

#[test]
fn dropping_a_session_without_finish_leaks_no_plane_threads() {
    let recording = Recording::capture(Scenario::two_camera_dinner(30, 3));
    let pipeline = DiEventPipeline::new(observed_config());
    let mut session = pipeline.session(&recording.scenario).expect("session");
    let probe = session.observer().expect("plane").probe();
    assert!(probe.threads_alive() > 0);
    for c in 0..recording.cameras() {
        session.push_frame(c, recording.frame(c, 0)).expect("push");
    }

    // Abandon the session entirely: the plane's own Drop must stop the
    // sampler and server within its bounded join.
    drop(session);
    assert_eq!(probe.threads_alive(), 0, "no leaked observability threads");
    assert!(probe.is_shutdown());
    assert_eq!(
        probe.ready_when_closed(),
        Some(false),
        "readyz must say 503 before the socket closes"
    );
}

#[test]
fn snapshot_rejects_malformed_window_parameters() {
    let recording = Recording::capture(Scenario::two_camera_dinner(20, 3));
    let pipeline = DiEventPipeline::new(observed_config());
    let mut session = pipeline.session(&recording.scenario).expect("session");
    let addr = session
        .observer()
        .expect("plane")
        .local_addr()
        .expect("bound");
    for c in 0..recording.cameras() {
        session.push_frame(c, recording.frame(c, 0)).expect("push");
    }

    // Malformed, zero, negative, overflowing, and empty window values
    // must all be rejected with 400 — not silently clamped, not 500.
    for bad in [
        "/snapshot?window=abc",
        "/snapshot?window=0",
        "/snapshot?window=-3",
        "/snapshot?window=99999999999999999999999999",
        "/snapshot?window=",
    ] {
        let (status, body) = http_get(addr, bad);
        assert_eq!(status, 400, "{bad} must be a client error, got: {body}");
        assert!(!body.is_empty(), "{bad}: the 400 explains itself");
    }

    // Well-formed requests still succeed, including an unrelated query
    // parameter (ignored) and no query at all.
    for good in ["/snapshot", "/snapshot?window=5", "/snapshot?other=1"] {
        let (status, body) = http_get(addr, good);
        assert_eq!(status, 200, "{good}: {body}");
        serde_json::from_str::<serde_json::Value>(&body).expect("snapshot is JSON");
    }

    session.finish().expect("finish");
}

#[test]
fn sample_rates_without_http_still_collects_windows() {
    let recording = Recording::capture(Scenario::two_camera_dinner(60, 5));
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .sample_rates(true)
        .sample_interval(Duration::from_millis(10))
        .build()
        .expect("valid config");
    let pipeline = DiEventPipeline::new(config);
    let mut session = pipeline.session(&recording.scenario).expect("session");
    let plane = session.observer().expect("sampler-only plane");
    assert!(plane.local_addr().is_none(), "no HTTP endpoint requested");

    for f in 0..recording.frames() {
        for c in 0..recording.cameras() {
            session.push_frame(c, recording.frame(c, f)).expect("push");
        }
        if f % 20 == 19 {
            std::thread::sleep(Duration::from_millis(12));
        }
    }
    let analysis = session.finish().expect("finish");
    assert!(!analysis.rate_windows.is_empty());
    let total: u64 = analysis
        .rate_windows
        .iter()
        .map(|w| w.delta_total("session.frames_fused"))
        .sum();
    assert_eq!(total, 60, "every fused frame lands in exactly one window");
}
