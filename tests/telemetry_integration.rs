//! Pipeline-level telemetry: the instrumented run must account for
//! every frame, populate per-stage spans, and expose consistent views
//! through the report, the stage timings, and the sinks.

use dievent_core::{DiEventPipeline, PipelineConfig, Recording, StageTimings};
use dievent_scene::Scenario;
use dievent_telemetry::Telemetry;

const FRAMES: usize = 40;

fn recording() -> Recording {
    Recording::capture(Scenario::two_camera_dinner(FRAMES, 11))
}

fn config() -> PipelineConfig {
    PipelineConfig {
        classify_emotions: false,
        parse_video: true,
        ..PipelineConfig::default()
    }
}

#[test]
fn every_recorded_frame_is_processed_per_camera() {
    let recording = recording();
    let cameras = recording.cameras();
    let pipeline = DiEventPipeline::new(config());
    let analysis = pipeline.run(&recording).expect("pipeline run");
    let report = &analysis.telemetry;

    // Per camera and in total, the extractors consumed exactly the
    // recording's frames.
    for c in 0..cameras {
        assert_eq!(
            report.counter(&format!("frames_processed{{camera=\"{c}\"}}")),
            Some(FRAMES as u64),
            "camera {c}"
        );
    }
    assert_eq!(
        report.counter_total("frames_processed"),
        (FRAMES * cameras) as u64
    );
    assert_eq!(report.gauge("recording_frames"), Some(FRAMES as f64));
    assert_eq!(report.gauge("cameras"), Some(cameras as f64));
    assert_eq!(report.gauge("participants"), Some(2.0));
}

#[test]
fn stage_spans_cover_the_run_and_feed_stage_timings() {
    let recording = recording();
    let pipeline = DiEventPipeline::new(config());
    let analysis = pipeline.run(&recording).expect("pipeline run");
    let report = &analysis.telemetry;

    assert_eq!(report.span("pipeline.run").unwrap().count, 1);
    for stage in [
        "stage.extraction",
        "stage.parse",
        "stage.analysis",
        "stage.metadata",
    ] {
        let s = report
            .span(stage)
            .unwrap_or_else(|| panic!("{stage} missing"));
        assert_eq!(s.count, 1, "{stage}");
        assert!(s.total_s > 0.0, "{stage}");
    }
    // One camera.extract span per camera, nested under the stage.
    assert_eq!(
        report.span("camera.extract").unwrap().count,
        recording.cameras() as u64
    );
    // StageTimings is a view over the same spans.
    assert_eq!(analysis.timings, StageTimings::from_report(report));
    assert!(analysis.timings.extraction_s > 0.0);

    // Latency histograms populated for hot paths.
    let fusion = report.histogram("fusion_seconds").unwrap();
    assert_eq!(fusion.count, FRAMES as u64);
    assert!(fusion.p95 >= fusion.p50);
    assert!(report.counter_total("faces_detected") > 0);
    assert_eq!(
        report.counter("lookat_tests"),
        Some((FRAMES * 2) as u64),
        "2 participants → 2 ordered pairs per frame"
    );
    // The repository records every populated row.
    assert_eq!(
        report.counter("metadata_inserts"),
        Some(analysis.repository.len() as u64)
    );
}

#[test]
fn disabled_telemetry_runs_clean_with_empty_report() {
    let recording = recording();
    let pipeline = DiEventPipeline::new_with_telemetry(config(), Telemetry::disabled());
    let analysis = pipeline.run(&recording).expect("pipeline run");
    assert_eq!(analysis.matrices.len(), FRAMES);
    assert!(analysis.telemetry.counters.is_empty());
    assert!(analysis.telemetry.spans.is_empty());
    assert_eq!(analysis.timings, StageTimings::default());
}

#[test]
fn trace_jsonl_is_parseable_and_tree_render_is_informative() {
    let recording = recording();
    let pipeline = DiEventPipeline::new(config());
    let _ = pipeline.run(&recording).expect("pipeline run");

    let trace = pipeline.telemetry().trace_jsonl();
    assert!(!trace.is_empty());
    let mut span_lines = 0usize;
    for line in trace.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("parseable JSONL");
        match v["kind"].as_str() {
            Some("span") => {
                span_lines += 1;
                assert!(v["duration_s"].as_f64().unwrap() >= 0.0);
            }
            Some("event") => {}
            other => panic!("unexpected kind {other:?}"),
        }
    }
    assert!(span_lines >= 6, "run + 4 stages + cameras: {span_lines}");

    let tree = pipeline.telemetry().render_tree();
    assert!(tree.contains("pipeline.run ("));
    assert!(tree.contains("stage.extraction"));
    assert!(tree.contains("camera.extract"));
    assert!(tree.contains("frames_processed{camera=\"0\"}"));
    assert!(tree.contains("p50="));
    assert!(tree.contains("p95="));
}

#[test]
fn telemetry_report_survives_digest_serialization() {
    let recording = recording();
    let pipeline = DiEventPipeline::new(config());
    let analysis = pipeline.run(&recording).expect("pipeline run");
    // The digest carries the stage timings for --json consumers.
    let digest = analysis.digest();
    let json = serde_json::to_string(&digest).unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(v["timings"]["extraction_s"].as_f64().unwrap() > 0.0);
    assert!(v["timings"]["metadata_s"].as_f64().is_some());
}
