//! Integration tests for per-frame causal lineage tracing: every
//! ingested frame lands in exactly one waterfall, stage timestamps are
//! monotonic, tracing does not perturb analysis results, and the
//! report is served over `GET /lineage` while frames flow.

use dievent_core::{DiEventPipeline, FrameWaterfall, PipelineConfig, Recording};
use dievent_scene::Scenario;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::time::Duration;

/// Minimal HTTP/1.1 GET: returns (status code, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn traced_config() -> PipelineConfig {
    PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .trace_lineage(true)
        // Large enough that the reservoir keeps *every* waterfall, so
        // the exactly-once property is checkable.
        .lineage_reservoir(4096)
        .build()
        .expect("valid config")
}

#[test]
fn every_ingested_frame_appears_in_exactly_one_waterfall() {
    let frames = 60;
    let recording = Recording::capture(Scenario::two_camera_dinner(frames, 7));
    let cameras = recording.cameras();
    let pipeline = DiEventPipeline::new(traced_config());
    let analysis = pipeline.run(&recording).expect("pipeline run");

    let report = analysis.lineage.expect("lineage report attached");
    assert_eq!(report.summary.frames_traced, frames as u64);
    assert_eq!(report.summary.in_flight, 0, "nothing left mid-flight");
    assert_eq!(
        report.summary.lanes_discarded, 0,
        "Block mode drops nothing"
    );
    assert_eq!(
        report.waterfalls.len(),
        frames,
        "reservoir kept every frame"
    );

    let unique: BTreeSet<u64> = report.waterfalls.iter().map(|w| w.frame).collect();
    assert_eq!(unique.len(), frames, "no frame fused twice");
    assert_eq!(unique.iter().next_back(), Some(&(frames as u64 - 1)));

    // Each waterfall carries one lane per camera (no drops, no
    // evictions in this run), and the exemplars are drawn from the
    // same population.
    for w in &report.waterfalls {
        assert_eq!(w.lanes.len(), cameras, "frame {}", w.frame);
    }
    assert!(!report.exemplars.is_empty(), "slowest frames always kept");
    for e in &report.exemplars {
        assert!(
            unique.contains(&e.frame),
            "exemplar {} is a real frame",
            e.frame
        );
    }

    // The per-stage summary covers the five attribution stages.
    for stage in ["queue_wait", "extract", "reorder_hold", "fuse", "total"] {
        let s = report.summary.stage(stage).expect(stage);
        assert_eq!(s.count, frames as u64, "{stage} observed once per frame");
    }
}

fn assert_monotonic(w: &FrameWaterfall) {
    for lane in &w.lanes {
        assert!(
            w.ingest_s <= lane.enqueue_s + 1e-12,
            "frame {}: ingest is the earliest enqueue",
            w.frame
        );
        assert!(
            lane.enqueue_s <= lane.start_s,
            "frame {} cam {}: enqueue <= start",
            w.frame,
            lane.camera
        );
        assert!(
            lane.start_s <= lane.end_s,
            "frame {} cam {}: start <= end",
            w.frame,
            lane.camera
        );
        assert!(
            lane.end_s <= w.fuse_start_s,
            "frame {} cam {}: extraction ends before fusion starts",
            w.frame,
            lane.camera
        );
    }
    assert!(w.fuse_start_s <= w.fuse_end_s, "frame {}", w.frame);
    // Each attribution is the worst lane for its stage, so the parts
    // can overlap in wall time (lane A queue-waits while lane B
    // extracts) and need not sum to the total — but each individually
    // fits inside the frame's end-to-end window.
    for (name, v) in [
        ("queue_wait", w.queue_wait_s),
        ("extract", w.extract_s),
        ("reorder_hold", w.reorder_hold_s),
        ("fuse", w.fuse_s),
        ("total", w.total_s),
    ] {
        assert!(
            v >= 0.0,
            "frame {}: {name} attribution negative: {v}",
            w.frame
        );
        assert!(
            v <= w.total_s + 1e-9,
            "frame {}: {name} ({v}) exceeds the end-to-end total ({})",
            w.frame,
            w.total_s
        );
    }
}

#[test]
fn stage_timestamps_are_monotonic_per_frame() {
    let recording = Recording::capture(Scenario::two_camera_dinner(40, 11));
    // Threaded (default) run: stamps cross producer, worker, and fuse
    // threads, which is exactly where monotonicity could break.
    let analysis = DiEventPipeline::new(traced_config())
        .run(&recording)
        .expect("pipeline run");
    let report = analysis.lineage.expect("lineage report");
    assert!(!report.waterfalls.is_empty());
    for w in report.waterfalls.iter().chain(&report.exemplars) {
        assert_monotonic(w);
    }
}

#[test]
fn tracing_does_not_change_analysis_results() {
    let recording = Recording::capture(Scenario::two_camera_dinner(30, 5));
    let traced = DiEventPipeline::new(traced_config())
        .run(&recording)
        .expect("traced run");
    let untraced = DiEventPipeline::new(PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    })
    .run(&recording)
    .expect("untraced run");
    assert_eq!(traced.matrices, untraced.matrices);
    let n = traced.summary.participants();
    assert_eq!(n, untraced.summary.participants());
    for g in 0..n {
        for t in 0..n {
            assert_eq!(traced.summary.get(g, t), untraced.summary.get(g, t));
        }
    }
    assert!(untraced.lineage.is_none(), "lineage is opt-in");
}

#[test]
fn lineage_endpoint_serves_the_breakdown_mid_run() {
    let frames = 120;
    let recording = Recording::capture(Scenario::two_camera_dinner(frames, 7));
    let config = PipelineConfig::builder()
        .classify_emotions(false)
        .parse_video(false)
        .trace_lineage(true)
        .serve_metrics("127.0.0.1:0".parse().expect("loopback"))
        .sample_interval(Duration::from_millis(20))
        .build()
        .expect("valid config");
    let pipeline = DiEventPipeline::new(config);
    let mut session = pipeline.session(&recording.scenario).expect("session");
    let addr = session
        .observer()
        .expect("plane")
        .local_addr()
        .expect("bound");

    for f in 0..frames / 2 {
        for c in 0..recording.cameras() {
            session.push_frame(c, recording.frame(c, f)).expect("push");
        }
    }
    session.poll();

    let (status, body) = http_get(addr, "/lineage");
    assert_eq!(status, 200, "{body}");
    let value: serde_json::Value = serde_json::from_str(&body).expect("lineage is JSON");
    assert_eq!(value.get("enabled"), Some(&serde_json::Value::Bool(true)));
    let summary = value.get("summary").expect("summary");
    assert!(
        summary
            .get("frames_traced")
            .and_then(|v| v.as_u64())
            .expect("frames_traced")
            > 0,
        "mid-run frames already traced:\n{body}"
    );
    let stages = summary
        .get("stages")
        .and_then(|v| v.as_array())
        .expect("stages array");
    let names: BTreeSet<&str> = stages
        .iter()
        .filter_map(|s| s.get("stage").and_then(|v| v.as_str()))
        .collect();
    for stage in ["queue_wait", "extract", "reorder_hold", "fuse", "total"] {
        assert!(names.contains(stage), "missing {stage} in:\n{body}");
    }
    let exemplars = value
        .get("exemplars")
        .and_then(|v| v.as_array())
        .expect("exemplars array");
    assert!(!exemplars.is_empty(), "slowest frames served mid-run");
    for e in exemplars {
        assert!(
            e.get("lanes").and_then(|v| v.as_array()).is_some(),
            "exemplar carries its full waterfall:\n{body}"
        );
    }

    for f in frames / 2..frames {
        for c in 0..recording.cameras() {
            session.push_frame(c, recording.frame(c, f)).expect("push");
        }
    }
    let analysis = session.finish().expect("finish");
    let report = analysis.lineage.expect("final lineage report");
    assert_eq!(report.summary.frames_traced, frames as u64);
}
