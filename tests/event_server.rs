//! Edge contracts of the multi-tenant event server: typed admission
//! refusals at the wire, per-tenant `DropOldest` shedding with an
//! exact conservation ledger, drain-while-ingesting, the connection
//! cap, and the live `GET /tenants` snapshot.

use dievent_core::{BackpressureMode, EventId, PipelineConfig, Recording};
use dievent_scene::Scenario;
use dievent_server::{EventClient, EventServer, RejectCode, RejectOp, ServerConfig, ServerMsg};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn quick_config() -> PipelineConfig {
    PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    }
}

/// Minimal HTTP/1.1 GET: returns (status code, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Session-quota exhaustion, duplicate ids, and unknown events all
/// come back as *typed* wire rejections carrying the op they answer.
#[test]
fn admission_refusals_are_typed_on_the_wire() {
    let server = EventServer::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        ServerConfig {
            max_sessions: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let scenario = Scenario::two_camera_dinner(4, 1);
    let mut client = EventClient::connect(server.local_addr()).expect("connect");

    client
        .open_event(EventId::new(1), &scenario, quick_config())
        .expect("io")
        .expect("first open admitted");

    // A second session exceeds the quota.
    let refusal = client
        .open_event(EventId::new(2), &scenario, quick_config())
        .expect("io")
        .expect_err("quota must refuse");
    assert_eq!(refusal.op, RejectOp::Open);
    assert_eq!(refusal.code, RejectCode::QuotaExhausted);
    assert_eq!(refusal.event, Some(EventId::new(2)));

    // Re-opening the live event is a duplicate, not a quota problem.
    let refusal = client
        .open_event(EventId::new(1), &scenario, quick_config())
        .expect("io")
        .expect_err("duplicate must refuse");
    assert_eq!(refusal.code, RejectCode::DuplicateEvent);

    // Finishing an event that was never opened is typed too.
    let refusal = client
        .finish_event(EventId::new(99))
        .expect("io")
        .expect_err("unknown event must refuse");
    assert_eq!(refusal.op, RejectOp::Finish);
    assert_eq!(refusal.code, RejectCode::UnknownEvent);

    // The admitted session still finishes cleanly.
    let done = client
        .finish_event(EventId::new(1))
        .expect("io")
        .expect("finish");
    assert_eq!(done.event, EventId::new(1));
    assert_eq!(done.pushed, 0);
}

/// Two tenants under `DropOldest`: the flooded tenant sheds load and
/// its ledger conserves exactly (`processed + dropped == pushed`,
/// frames-only workload), while the trickling tenant loses nothing —
/// shedding is accounted per tenant, not server-wide.
#[test]
fn drop_oldest_sheds_and_conserves_per_tenant() {
    const FLOOD: u64 = 150;
    const TRICKLE: u64 = 4;
    let server = EventServer::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        ServerConfig {
            backpressure: BackpressureMode::DropOldest,
            // Two cameras per tenant -> capacity 1 per feed queue.
            max_inflight_frames: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let scenario = Scenario::two_camera_dinner(4, 11);
    let recording = Recording::capture(scenario.clone());
    let flooded = EventId::new(1);
    let trickled = EventId::new(2);

    let mut client = EventClient::connect(server.local_addr()).expect("connect");
    for event in [flooded, trickled] {
        client
            .open_event(event, &scenario, quick_config())
            .expect("io")
            .expect("open admitted");
    }

    let frames: Vec<_> = (0..recording.cameras())
        .map(|c| recording.frame(c, 0))
        .collect();
    for seq in 0..FLOOD {
        for (c, frame) in frames.iter().enumerate() {
            client
                .send_frame(flooded, c.into(), seq, frame.clone())
                .expect("send");
        }
        if seq < TRICKLE {
            for (c, frame) in frames.iter().enumerate() {
                client
                    .send_frame(trickled, c.into(), seq, frame.clone())
                    .expect("send");
            }
        }
    }

    let hot = client
        .finish_event(flooded)
        .expect("io")
        .expect("finish flooded");
    assert_eq!(hot.pushed, FLOOD * 2, "server accepted every send");
    assert!(
        hot.dropped > 0,
        "capacity-1 queues under instant pushes must shed"
    );
    assert_eq!(
        hot.processed + hot.dropped,
        hot.pushed,
        "flooded tenant: every accepted frame processed or counted shed"
    );

    let cool = client
        .finish_event(trickled)
        .expect("io")
        .expect("finish trickled");
    assert_eq!(cool.pushed, TRICKLE * 2);
    assert_eq!(
        cool.processed + cool.dropped,
        cool.pushed,
        "trickled tenant conserves independently"
    );
    assert!(
        client.rejections.is_empty(),
        "no ingest was refused: {:?}",
        client.rejections
    );
}

/// Drain fired from a second connection while a producer is
/// mid-flood: the drained session's ledger still conserves exactly,
/// the producer's post-drain pushes get typed refusals, and new opens
/// are refused with `Draining`.
#[test]
fn drain_while_ingesting_conserves_and_refuses_late_work() {
    let server = EventServer::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        ServerConfig::default(),
    )
    .expect("bind");
    let scenario = Scenario::two_camera_dinner(4, 7);
    let recording = Recording::capture(scenario.clone());
    let event = EventId::new(5);

    let mut opener = EventClient::connect(server.local_addr()).expect("connect");
    opener
        .open_event(event, &scenario, quick_config())
        .expect("io")
        .expect("open admitted");

    let stop = AtomicBool::new(false);
    let (drained, sent_after_drain) = std::thread::scope(|s| {
        let producer = s.spawn(|| {
            let mut client = EventClient::connect(server.local_addr()).expect("connect");
            let frames: Vec<_> = (0..recording.cameras())
                .map(|c| recording.frame(c, 0))
                .collect();
            let mut seq = 0u64;
            let mut sent_after = 0u64;
            // Keep pushing well past the drain so refusals must occur.
            while !stop.load(Ordering::Acquire) || sent_after < 10 {
                for (c, frame) in frames.iter().enumerate() {
                    client
                        .send_frame(event, c.into(), seq, frame.clone())
                        .expect("send");
                }
                if stop.load(Ordering::Acquire) {
                    sent_after += 1;
                }
                seq += 1;
            }
            let rejected = client
                .poll_rejections()
                .expect("drain refusals readable")
                .iter()
                .filter(|r| r.op == RejectOp::Ingest && r.code == RejectCode::UnknownEvent)
                .count();
            (rejected, sent_after)
        });

        // Let the flood establish itself, then drain from a second
        // connection while frames are still arriving.
        std::thread::sleep(Duration::from_millis(50));
        let mut drainer = EventClient::connect(server.local_addr()).expect("connect");
        let drained = drainer.drain().expect("drain");
        stop.store(true, Ordering::Release);
        let (rejected, sent_after) = producer.join().expect("producer");
        assert!(
            rejected > 0,
            "pushes landing after the drain must be refused"
        );
        (drained, sent_after)
    });

    assert!(sent_after_drain >= 10);
    assert_eq!(drained.len(), 1, "one open session drained");
    let ledger = &drained[0];
    assert_eq!(ledger.event, event);
    assert!(ledger.pushed > 0, "drain raced a live flood");
    assert_eq!(
        ledger.processed + ledger.dropped,
        ledger.pushed,
        "mid-flood drain conserves: {} processed + {} dropped != {} pushed",
        ledger.processed,
        ledger.dropped,
        ledger.pushed
    );

    assert!(server.is_draining());
    let refusal = opener
        .open_event(EventId::new(6), &scenario, quick_config())
        .expect("io")
        .expect_err("post-drain open must refuse");
    assert_eq!(refusal.code, RejectCode::Draining);
}

/// Accepts beyond `max_connections` are answered with a typed
/// `ServerBusy` refusal and closed, not silently dropped.
#[test]
fn connection_cap_refuses_with_server_busy() {
    let server = EventServer::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let _held = EventClient::connect(server.local_addr()).expect("first connection");
    // The accept loop counts the first connection within a poll tick.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.connections() < 1 {
        assert!(std::time::Instant::now() < deadline, "accept registered");
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let msg = ServerMsg::read_from(&mut stream, &|| false)
        .expect("refusal readable")
        .expect("refusal sent before close");
    match msg {
        ServerMsg::Rejected { op, code, .. } => {
            assert_eq!(op, RejectOp::Connection);
            assert_eq!(code, RejectCode::ServerBusy);
        }
        other => panic!("expected a connection refusal, got {other:?}"),
    }
}

/// `GET /tenants` on the shared observability plane serves a live
/// per-tenant snapshot mid-run, and reflects the drain afterwards.
#[test]
fn tenants_endpoint_serves_live_snapshot() {
    let mut server = EventServer::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        ServerConfig {
            observe_addr: Some("127.0.0.1:0".parse().expect("loopback")),
            sample_interval: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let observe = server.observe_addr().expect("plane bound");
    let scenario = Scenario::two_camera_dinner(4, 3);
    let recording = Recording::capture(scenario.clone());

    let mut client = EventClient::connect(server.local_addr()).expect("connect");
    for id in [10u64, 11] {
        client
            .open_event(EventId::new(id), &scenario, quick_config())
            .expect("io")
            .expect("open admitted");
    }
    for seq in 0..3u64 {
        for c in 0..recording.cameras() {
            client
                .send_frame(
                    EventId::new(10),
                    c.into(),
                    seq,
                    recording.frame(c, seq as usize),
                )
                .expect("send");
        }
    }

    let (status, body) = http_get(observe, "/tenants");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"draining\": false"), "{body}");
    assert!(body.contains("\"open\": 2"), "{body}");
    assert!(
        body.contains("\"event\": 10") && body.contains("\"event\": 11"),
        "{body}"
    );
    assert!(body.contains("\"pushed\": 6"), "tenant 10 pushed 6: {body}");
    assert!(body.contains("\"state\": \"open\""), "{body}");

    // The same snapshot is reachable in-process, and the plane's
    // metrics carry the tenant label.
    let in_proc = server.tenants_json();
    assert!(in_proc.contains("\"open\": 2"), "{in_proc}");
    let (status, metrics) = http_get(observe, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("tenant=\"10\""),
        "session metrics must carry the tenant label:\n{metrics}"
    );

    let drained = client.drain().expect("drain");
    assert_eq!(drained.len(), 2);
    let (status, body) = http_get(observe, "/tenants");
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\": true"), "{body}");
    assert!(body.contains("\"open\": 0"), "{body}");
    assert!(body.contains("\"finished\": 2"), "{body}");

    assert!(server.shutdown_join(), "clean shutdown");
}
