//! Cross-crate integration: the full pipeline with every stage enabled
//! on a small event, plus durability of the produced metadata.

use dievent_core::{DiEventPipeline, PipelineConfig, Recording};
use dievent_metadata::{MetaRecord, MetadataRepository, Query, RecordKind};
use dievent_scene::{EmotionDynamicsConfig, Scenario};

fn small_full_analysis() -> dievent_core::EventAnalysis {
    let mut scenario = Scenario::two_camera_dinner(60, 17);
    // Lively emotions so the emotion layer has something to see.
    scenario.emotion_config = EmotionDynamicsConfig {
        stay_probability: 0.9,
        happy_weight: 6.0,
        neutral_weight: 2.0,
        other_weight: 0.5,
    };
    let recording = Recording::capture(scenario);
    DiEventPipeline::new(PipelineConfig::default())
        .run(&recording)
        .expect("pipeline run")
}

#[test]
fn all_stages_produce_consistent_output() {
    let analysis = small_full_analysis();

    // Stage 2: structure exists and tiles the video.
    let s = analysis.structure.as_ref().expect("video parsing ran");
    assert_eq!(s.frame_count, 60);
    assert_eq!(s.shots.first().unwrap().start, 0);
    assert_eq!(s.shots.last().unwrap().end, 60);

    // Stage 3+4: matrices and emotion series are frame-aligned.
    assert_eq!(analysis.matrices.len(), 60);
    assert_eq!(analysis.overall.len(), 60);
    assert_eq!(analysis.importance.len(), 60);

    // Emotion layer observed someone.
    let observed: usize = analysis.overall.iter().map(|o| o.observed).sum();
    assert!(observed > 30, "too few emotion observations: {observed}");
    // Mixes are valid distributions.
    for o in &analysis.overall {
        assert!((o.mix.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((0.0..=100.0).contains(&o.overall_happiness));
    }

    // Gaze layer is reasonably faithful.
    assert!(analysis.validation.f1 > 0.6, "{:?}", analysis.validation);

    // Stage 5: repository content matches the in-memory results.
    let repo = &analysis.repository;
    let frame_records = repo.query(&Query::new().kind(RecordKind::FrameAnalysis));
    assert_eq!(frame_records.len(), 60);
    let ec_count_repo = repo.count(
        &Query::new()
            .kind(RecordKind::FrameAnalysis)
            .ge("eye_contacts", 1i64),
    );
    let ec_count_mem = analysis
        .matrices
        .iter()
        .filter(|m| !m.eye_contacts().is_empty())
        .count();
    assert_eq!(ec_count_repo, ec_count_mem);

    // Summary coherence: summary equals the sum of matrices.
    let mut total = 0u32;
    for m in &analysis.matrices {
        total += m.count_ones() as u32;
    }
    let summary_total: u32 = (0..2).map(|p| analysis.summary.received(p)).sum();
    assert_eq!(total, summary_total);
}

#[test]
fn analysis_records_survive_a_durable_round_trip() {
    let analysis = small_full_analysis();
    let dir = std::env::temp_dir().join("dievent-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("event-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Copy the in-memory analysis records into a durable repository.
    {
        let durable = MetadataRepository::open(&path).unwrap();
        for r in analysis.repository.query(&Query::new()) {
            let clone = MetaRecord {
                id: dievent_metadata::RecordId(0),
                ..r
            };
            durable.insert(clone).unwrap();
        }
        assert_eq!(durable.len(), analysis.repository.len());
    }

    // Reopen and query.
    let reopened = MetadataRepository::open(&path).unwrap();
    assert_eq!(reopened.len(), analysis.repository.len());
    let q = Query::new().kind(RecordKind::FrameAnalysis).ge("oh", 0.0);
    assert_eq!(reopened.count(&q), 60);
    std::fs::remove_file(&path).ok();
}

#[test]
fn summary_selection_respects_structure() {
    let analysis = small_full_analysis();
    if let Some(summary) = &analysis.video_summary {
        let shots = &analysis.structure.as_ref().unwrap().shots;
        for seg in &summary.segments {
            let shot = &shots[seg.shot];
            assert_eq!((seg.start, seg.end), (shot.start, shot.end));
        }
        assert!(summary.total_frames <= 150, "budget respected");
    }
}

#[test]
fn restaurant_dinner_six_guests() {
    // The smart-restaurant setting: six guests, conversation-driven
    // gaze, four cameras, through the full pixel pipeline.
    let scenario = Scenario::restaurant_dinner(6, 120, 33);
    let recording = Recording::capture(scenario);
    let analysis = DiEventPipeline::new(PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    })
    .run(&recording)
    .expect("pipeline run");

    assert_eq!(analysis.participants, 6);
    assert_eq!(analysis.matrices.len(), 120);
    // Conversation gaze must be visible in the detected matrices.
    let total_looks: usize = analysis.matrices.iter().map(|m| m.count_ones()).sum();
    assert!(total_looks > 100, "too few detected looks: {total_looks}");
    // Fidelity: six similar-tone identities and more mutual occlusion
    // make this harder than the 4-person prototype, but the shape must
    // hold.
    assert!(
        analysis.validation.f1 > 0.5,
        "six-guest F1 too low: {:?}",
        analysis.validation
    );
    // The most-watched participant per the detector must be among the
    // top-2 most-watched per ground truth.
    let truth_summary = recording.ground_truth.summary_matrix(0.30);
    let truth_received: Vec<u32> = (0..6)
        .map(|p| (0..6).map(|g| truth_summary[g][p]).sum())
        .collect();
    let mut order: Vec<usize> = (0..6).collect();
    order.sort_by_key(|&p| std::cmp::Reverse(truth_received[p]));
    let detected_top = analysis.dominance.dominant.expect("looks were detected");
    assert!(
        order[..2].contains(&detected_top),
        "detected dominant P{} not in ground-truth top-2 {:?}",
        detected_top + 1,
        &order[..2]
    );
}

#[test]
fn social_profiles_recover_declared_engagement() {
    use dievent_analysis::layers::{SocialRelation, TimeInvariantContext};
    use dievent_scene::{generate_conversation, ConversationConfig};

    // Four guests: one engaged pair (0,3) with strong mutual affinity.
    let guests = 4;
    let frames = 400;
    let mut context = TimeInvariantContext {
        participants: guests,
        location: "test table".into(),
        ..Default::default()
    };
    context.set_relation(0, 3, SocialRelation::Friends);

    let mut affinity = vec![vec![1.0; guests]; guests];
    affinity[0][3] = 20.0;
    affinity[3][0] = 20.0;

    let mut scenario = Scenario::restaurant_dinner(guests, frames, 5);
    // Mutual contact is mostly speaker-driven (speaker picks a listener
    // affinity-weighted; listeners watch the speaker), so a higher
    // speaker engagement amplifies the declared pair's signal.
    let (schedule, _) = generate_conversation(
        guests,
        frames,
        &ConversationConfig {
            affinity: Some(affinity),
            speaker_engagement: 0.8,
            ..Default::default()
        },
        5,
    );
    scenario.schedule = schedule;

    let recording = Recording::capture(scenario).with_context(context);
    let analysis = DiEventPipeline::new(PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    })
    .run(&recording)
    .expect("pipeline run");

    let profiles = analysis.social_profiles();
    assert!(!profiles.is_empty());
    let friends = profiles
        .iter()
        .find(|p| p.relation == SocialRelation::Friends)
        .expect("declared pair profiled");
    let strangers = profiles
        .iter()
        .find(|p| p.relation == SocialRelation::Strangers)
        .expect("undeclared pairs default to strangers");
    assert!(
        friends.mean_contact_ratio > 1.5 * strangers.mean_contact_ratio,
        "friends {:.3} vs strangers {:.3}",
        friends.mean_contact_ratio,
        strangers.mean_contact_ratio
    );

    // The event record carries the context.
    let events = analysis
        .repository
        .query(&Query::new().kind(RecordKind::Event));
    assert_eq!(
        events[0].attr("location"),
        Some(&dievent_metadata::AttrValue::Str("test table".into()))
    );
}
