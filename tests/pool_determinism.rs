//! Determinism of frame-parallel execution: the work-stealing pool may
//! reorder *when* per-frame work runs, but never *what* it computes.
//!
//! The contract under test is the one the whole perf story rests on:
//! stage-3 extraction is split into a pure phase (fanned across the
//! pool as frame chunks) and a stateful phase (integrated in frame
//! order), and stage-4 fusion computes frames into positional slots —
//! so a fully parallel run must be **bit-identical** to the fully
//! sequential one, on every output surface of [`EventAnalysis`].

use dievent_core::{DiEventPipeline, EventAnalysis, PipelineConfig, Recording};
use dievent_scene::Scenario;

fn run(recording: &Recording, config: PipelineConfig) -> EventAnalysis {
    DiEventPipeline::new(config)
        .run(recording)
        .expect("pipeline run")
}

/// Asserts every comparable output surface of two analyses matches.
fn assert_identical(a: &EventAnalysis, b: &EventAnalysis) {
    assert_eq!(a.raw_matrices, b.raw_matrices, "raw look-at matrices");
    assert_eq!(a.matrices, b.matrices, "smoothed look-at matrices");
    assert_eq!(a.summary.rows(), b.summary.rows(), "summary matrix");
    assert_eq!(a.overall, b.overall, "overall-emotion series");
    assert_eq!(a.episodes, b.episodes, "eye-contact episodes");
    assert_eq!(a.pair_stats, b.pair_stats, "pair statistics");
    assert_eq!(a.highlights, b.highlights, "highlights");
    assert_eq!(a.importance, b.importance, "importance series");
    assert_eq!(a.validation, b.validation, "validation");
    assert_eq!(a.dominance, b.dominance, "dominance ranking");
}

/// The paper's §III prototype (4 participants, 4 cameras, 610 frames)
/// through the full pixel pipeline: parallel cameras + a multi-worker
/// frame pool versus the single-threaded inline path. `pool_threads: 3`
/// forces real fan-out even on a single-core runner.
#[test]
fn prototype_pool_parallel_is_bit_identical_to_sequential() {
    let recording = Recording::capture(Scenario::prototype());
    let base = PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    };
    let parallel = run(
        &recording,
        PipelineConfig {
            parallel_cameras: true,
            frame_parallel: true,
            pool_threads: 3,
            ..base
        },
    );
    let sequential = run(
        &recording,
        PipelineConfig {
            parallel_cameras: false,
            frame_parallel: false,
            ..base
        },
    );
    assert_eq!(parallel.matrices.len(), 610, "the paper's frame count");
    assert_identical(&parallel, &sequential);
}

/// Emotion classification runs in the pool's pure phase with per-chunk
/// scratch buffers; its probabilities must survive parallelism bit for
/// bit too (the prototype test above disables it to stay affordable).
#[test]
fn classification_under_frame_parallelism_is_bit_identical() {
    let recording = Recording::capture(Scenario::two_camera_dinner(48, 7));
    let base = PipelineConfig {
        classify_emotions: true,
        parse_video: true,
        ..PipelineConfig::default()
    };
    let parallel = run(
        &recording,
        PipelineConfig {
            parallel_cameras: true,
            frame_parallel: true,
            pool_threads: 2,
            ..base
        },
    );
    let sequential = run(
        &recording,
        PipelineConfig {
            parallel_cameras: false,
            frame_parallel: false,
            ..base
        },
    );
    assert_identical(&parallel, &sequential);
}

/// A private pool and the shared global pool are interchangeable:
/// sizing the pool changes scheduling, never results.
#[test]
fn private_pool_equals_global_pool() {
    let recording = Recording::capture(Scenario::two_camera_dinner(32, 5));
    let base = PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        frame_parallel: true,
        ..PipelineConfig::default()
    };
    let global = run(
        &recording,
        PipelineConfig {
            pool_threads: 0,
            ..base
        },
    );
    let private = run(
        &recording,
        PipelineConfig {
            pool_threads: 4,
            ..base
        },
    );
    assert_identical(&global, &private);
}

/// A frame-parallel run publishes its pool activity into the
/// telemetry report (`pool.tasks`, `pool.steals`, `pool.threads`,
/// `pool.queue_depth`), and a `frame_parallel: false` run does not.
#[test]
fn pool_telemetry_is_published_only_when_parallel() {
    let recording = Recording::capture(Scenario::two_camera_dinner(16, 3));
    let base = PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    };
    let on = run(
        &recording,
        PipelineConfig {
            frame_parallel: true,
            pool_threads: 2,
            ..base
        },
    );
    let has = |a: &EventAnalysis, name: &str| a.telemetry.counters.iter().any(|c| c.name == name);
    assert!(has(&on, "pool.tasks"), "pool.tasks counter registered");
    assert!(has(&on, "pool.steals"), "pool.steals counter registered");
    let off = run(
        &recording,
        PipelineConfig {
            frame_parallel: false,
            ..base
        },
    );
    assert!(!has(&off, "pool.tasks"), "no pool metrics when disabled");
}
