//! Determinism rail for the TCP ingest path: the paper's §III
//! prototype (4 participants, 4 cameras, 610 frames) streamed through
//! the event server — frames serialized, length-prefix framed, decoded
//! and re-sequenced server-side — must produce an `EventAnalysis`
//! bit-identical to feeding the same `PipelineSession` directly. The
//! wire format ships timestamps as `f64` bit patterns precisely so
//! this holds.

use dievent_core::{DiEventPipeline, EventAnalysis, EventId, PipelineConfig, Recording};
use dievent_scene::Scenario;
use dievent_server::{EventClient, EventServer, ServerConfig};

fn quick_config() -> PipelineConfig {
    PipelineConfig {
        classify_emotions: false,
        parse_video: false,
        ..PipelineConfig::default()
    }
}

/// Asserts every comparable output surface of two analyses matches.
fn assert_identical(a: &EventAnalysis, b: &EventAnalysis) {
    assert_eq!(a.raw_matrices, b.raw_matrices, "raw look-at matrices");
    assert_eq!(a.matrices, b.matrices, "smoothed look-at matrices");
    assert_eq!(a.summary.rows(), b.summary.rows(), "summary matrix");
    assert_eq!(a.overall, b.overall, "overall-emotion series");
    assert_eq!(a.episodes, b.episodes, "eye-contact episodes");
    assert_eq!(a.pair_stats, b.pair_stats, "pair statistics");
    assert_eq!(a.highlights, b.highlights, "highlights");
    assert_eq!(a.importance, b.importance, "importance series");
    assert_eq!(a.validation, b.validation, "validation");
    assert_eq!(a.dominance, b.dominance, "dominance ranking");
}

#[test]
fn tcp_ingest_is_bit_identical_to_direct_session() {
    let scenario = Scenario::prototype();
    let recording = Recording::capture(scenario.clone());
    let frames = recording.frames();
    let cameras = recording.cameras();

    // Direct path, under the exact config the server would derive for
    // this tenant: shared global pool, threaded cameras, the server's
    // default per-tenant queue budget. (Determinism does not depend on
    // any of these — see pool_determinism — but matching them keeps
    // this a pure transport comparison.)
    let server_config = ServerConfig::default();
    let mut direct_config = quick_config();
    direct_config.streaming.channel_capacity = (server_config.max_inflight_frames / cameras).max(1);
    let mut session = DiEventPipeline::new(direct_config)
        .session(&scenario)
        .expect("direct session");
    for f in 0..frames {
        for c in 0..cameras {
            session.push_frame(c, recording.frame(c, f)).expect("push");
        }
    }
    let direct = session.finish().expect("direct finish");
    assert_eq!(direct.matrices.len(), 610, "the paper's frame count");

    // Wire path: same frames, same interleaved order, over TCP.
    let server = EventServer::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        ServerConfig {
            retain_analyses: true,
            ..server_config
        },
    )
    .expect("bind");
    let event = EventId::new(42);
    let mut client = EventClient::connect(server.local_addr()).expect("connect");
    client
        .open_event(event, &scenario, quick_config())
        .expect("io")
        .expect("open admitted");
    for f in 0..frames {
        for c in 0..cameras {
            client
                .send_frame(event, c.into(), f as u64, recording.frame(c, f))
                .expect("send");
        }
    }
    let finished = client.finish_event(event).expect("io").expect("finish");
    assert!(
        client.rejections.is_empty(),
        "no ingest refused: {:?}",
        client.rejections
    );
    assert_eq!(finished.pushed, (frames * cameras) as u64);
    assert_eq!(finished.dropped, 0, "Block backpressure loses nothing");
    assert_eq!(finished.processed, finished.pushed);

    let streamed = server.take_analysis(event).expect("retained analysis");
    assert_identical(&streamed, &direct);
    // The wire digest is the digest of the analysis both paths agree
    // on — except `timings`, which is wall-clock and run-dependent.
    let mut wire_digest = finished.digest.clone();
    let mut direct_digest = direct.digest();
    wire_digest.timings = Default::default();
    direct_digest.timings = Default::default();
    assert_eq!(wire_digest, direct_digest);
}
